package httptransport

// The HTTP streaming backend of the session fabric. The per-POST path pays
// the full net/http request lifecycle — routing, header parsing, connection
// bookkeeping — for every chunk of every upload, which PR 4's profiles
// showed is the single-core bottleneck once serialization and aggregation
// are off the critical path (~1.4ms of ~1.6ms per session). Here a whole
// session rides ONE long-lived POST to /papaya/v2/stream/{node}: the
// request body is a pipelined sequence of length-prefixed wire frames
// (wire.AppendStreamFrame), the response body is the matching sequence of
// response frames, and the HTTP machinery is paid once per session instead
// of once per call. Full-duplex HTTP/1.1 (http.ResponseController
// .EnableFullDuplex) lets the handler answer frame by frame while the
// client keeps writing.
//
// The session machinery itself — pipelined serving, idle pooling, per-call
// deadlines, ack elision, frame coalescing — lives in the shared
// internal/transport/streamcore engine; this file supplies the two HTTP
// adapters (the client's long-lived POST pipe and the server's full-duplex
// response) and the negotiation glue.
//
// Streaming is a negotiated /v2/ capability (wire.Capabilities.Stream,
// versioning rule 4): every build serves the route, but a fabric streams
// only toward peers that advertised it; everyone else keeps receiving the
// per-POST bytes. Fault injection is preserved on both ends — the client
// side runs checkCall before every streamed call, and the server side runs
// the same invoke dispatch as handleRPC for every frame — so the
// conformance suite's Appendix E.4 failure drills hold verbatim on streams.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/transport/streamcore"
	"repro/internal/transport/wire"
)

// Compile-time checks: the HTTP backend offers the streaming surface, and
// its bound sessions expose the ack-elision surface.
var (
	_ transport.StreamFabric   = (*Fabric)(nil)
	_ transport.ElidingSession = (*boundSession)(nil)
)

// streamContentType marks a streaming response body (a frame sequence, not
// a single RPC frame).
const streamContentType = "application/x-papaya-stream"

// maxIdleStreamsPerPeer caps the cached sessions kept per (peer, node)
// pair under Options.Stream; extras beyond the cap are closed on release.
const maxIdleStreamsPerPeer = 16

// --- server side ---

// httpConn adapts one inbound stream POST (request body in, response
// writer out) to the engine's Conn. Deadlines map onto the
// http.ResponseController's read/write deadlines.
type httpConn struct {
	w       http.ResponseWriter
	rc      *http.ResponseController
	body    io.Closer
	br      *bufio.Reader
	scratch []byte
}

func (h *httpConn) ReadFrame(max int) (byte, []byte, error) {
	flags, payload, scratch, err := wire.ReadStreamFrameFrom(h.br, h.scratch, max)
	h.scratch = scratch
	return flags, payload, err
}

func (h *httpConn) WriteFrames(bufs net.Buffers) (int64, error) {
	n, err := bufs.WriteTo(h.w)
	if err != nil {
		return n, err
	}
	return n, h.rc.Flush()
}

func (h *httpConn) SetDeadline(t time.Time) error {
	if err := h.rc.SetReadDeadline(t); err != nil {
		return err
	}
	return h.rc.SetWriteDeadline(t)
}

func (h *httpConn) Close() error { return h.body.Close() }

// handleStream serves one streaming session through the shared engine: a
// pipelined sequence of length-prefixed request frames answered in order by
// response frames over a single POST. Each frame is decoded by its own
// sniffed codec and runs through the same fault-check dispatch as a
// per-POST call, so streamed traffic has identical semantics — including
// injected crashes and partitions taking effect mid-stream, and the no-ack
// suppression path for peers that negotiated ack elision. The loop exits
// when the client closes its end (the session's natural close signal) or
// the connection breaks.
func (f *Fabric) handleStream(w http.ResponseWriter, r *http.Request) {
	node := r.PathValue("node")
	rc := http.NewResponseController(w)
	// Full duplex: we must answer earlier frames while the client still
	// writes later ones. Best-effort — HTTP/1.1 (our only transport; h2
	// needs TLS) supports it.
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", streamContentType)
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush() // release the client's Do() before the first frame

	conn := &httpConn{w: w, rc: rc, body: r.Body, br: bufio.NewReaderSize(r.Body, 32<<10)}
	streamcore.Serve(conn, streamcore.ServeConfig{
		DefaultCodec: f.codec,
		MaxFrame:     maxRPCBodyBytes,
		Prefix:       "httptransport",
		Counters:     &f.counters,
		Invoke: func(req *wire.Request) *wire.Response {
			return f.invoke(node, req)
		},
	})
}

// --- client side ---

// pipeConn adapts the client half of one stream POST — the request-body
// pipe out, the response body in — to the engine's Conn. HTTP bodies have
// no native deadlines, so SetDeadline arms one persistent reusable timer
// that force-closes the conn (the engine clears it after every completed
// exchange; an armed timer firing while the session idles in a pool would
// otherwise destroy it).
type pipeConn struct {
	pw     *io.PipeWriter
	resp   *http.Response
	br     *bufio.Reader
	cancel context.CancelFunc

	scratch []byte

	tmu   sync.Mutex
	timer *time.Timer
}

func (p *pipeConn) ReadFrame(max int) (byte, []byte, error) {
	flags, payload, scratch, err := wire.ReadStreamFrameFrom(p.br, p.scratch, max)
	p.scratch = scratch
	return flags, payload, err
}

func (p *pipeConn) WriteFrames(bufs net.Buffers) (int64, error) {
	return bufs.WriteTo(p.pw)
}

func (p *pipeConn) SetDeadline(t time.Time) error {
	p.tmu.Lock()
	defer p.tmu.Unlock()
	if t.IsZero() {
		if p.timer != nil {
			p.timer.Stop()
		}
		return nil
	}
	d := time.Until(t)
	if p.timer == nil {
		p.timer = time.AfterFunc(d, p.abort)
		return nil
	}
	p.timer.Stop()
	p.timer.Reset(d)
	return nil
}

// abort force-closes the underlying connection, unblocking any in-flight
// read or pipe write. Closing the body pipe matters as much as the cancel:
// when the peer dies, the transport's write loop is blocked reading this
// pipe, and context cancellation cannot interrupt a body Read — only the
// close can.
func (p *pipeConn) abort() {
	p.pw.CloseWithError(errors.New("httptransport: stream call timed out"))
	p.resp.Body.Close()
	p.cancel()
}

func (p *pipeConn) Close() error {
	p.tmu.Lock()
	if p.timer != nil {
		p.timer.Stop()
	}
	p.tmu.Unlock()
	p.pw.Close() // EOF at the server: the session's natural close signal
	p.resp.Body.Close()
	p.cancel()
	return nil
}

// openStreamSession dials one streaming session toward target for node.
// The caller has already checked faults and confirmed the peer negotiated
// the capability.
func (f *Fabric) openStreamSession(target, node string, caps wire.Capabilities) (*streamcore.Session, error) {
	enc := f.codec
	if f.binPreferred && !caps.SupportsBinary() {
		enc = f.fallback
	}
	pr, pw := io.Pipe()
	// The open phase (dial + response headers) is deadline-bounded like
	// any call — a blackholed peer must fail fast so the caller can fail
	// over — but the context must outlive Do: cancelling it would kill
	// the long-lived stream, so the timer only fires on a slow open and
	// the session owns the cancel for its teardown.
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, target+apiPrefixV2+"/stream/"+url.PathEscape(node), pr)
	if err != nil {
		cancel()
		pw.Close()
		return nil, err
	}
	httpReq.Header.Set("Content-Type", enc.ContentType())
	var openTimer *time.Timer
	if f.callTimeout > 0 {
		openTimer = time.AfterFunc(f.callTimeout, func() {
			pw.CloseWithError(errors.New("httptransport: stream open timed out"))
			cancel()
		})
	}
	resp, err := f.streamClient.Do(httpReq)
	if openTimer != nil {
		openTimer.Stop()
	}
	if err != nil {
		cancel()
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		pw.Close()
		return nil, fmt.Errorf("httptransport: stream to %s: HTTP %d: %s", node, resp.StatusCode, msg)
	}
	conn := &pipeConn{pw: pw, resp: resp, br: bufio.NewReaderSize(resp.Body, 32<<10), cancel: cancel}
	s := streamcore.NewSession(conn, streamcore.Config{
		Codec:       enc,
		Deflate:     f.deflateBody && caps.SupportsCompression(),
		Node:        node,
		Prefix:      "httptransport",
		CallTimeout: f.callTimeout,
		MaxFrame:    maxRPCBodyBytes,
		Counters:    &f.counters,
	})
	s.Addr = target
	if !f.pool.Track(s) {
		// Lost the race against Close: a session registered now would
		// never be torn down (Close already snapshotted the pool).
		conn.Close()
		return nil, errors.New("httptransport: fabric closed")
	}
	return s, nil
}

// --- the Options.Stream call path ---

func streamKey(target, node string) string { return target + "|" + node }

// acquireStream pops a cached idle session for (target, node) or opens a
// fresh one; fresh reports which, so the caller knows whether a broken
// session might just have been stale.
func (f *Fabric) acquireStream(target, node string, caps wire.Capabilities) (s *streamcore.Session, fresh bool, err error) {
	if s = f.pool.Take(streamKey(target, node)); s != nil {
		return s, false, nil
	}
	s, err = f.openStreamSession(target, node, caps)
	return s, true, err
}

// streamCall routes one Fabric.Call over a cached streaming session. A
// stale cached session (the peer restarted since it was pooled) whose
// failure happened before any bytes went out is discarded and the call
// retried on another connection — the equivalent of the POST path dialing
// anew. Once bytes may have reached the peer the call is never resent
// (at-most-once, like a failed POST): the error surfaces as ErrCrashed
// and the component-level failover paths own the retry decision.
func (f *Fabric) streamCall(from, to, target, method string, payload any, caps wire.Capabilities) (any, error) {
	for {
		s, fresh, err := f.acquireStream(target, to, caps)
		if err != nil {
			return nil, fmt.Errorf("%w: %s unreachable: %v", transport.ErrCrashed, to, err)
		}
		out, err, wrote := s.Do(from, method, payload)
		if err == nil {
			// The call succeeded even if a racing deadline marked the
			// session broken afterwards; Release keeps or discards the
			// session accordingly.
			f.pool.Release(streamKey(target, to), s)
			return out, nil
		}
		if !s.Broken() {
			// Application or wire-kind error over a healthy session.
			f.pool.Release(streamKey(target, to), s)
			return nil, err
		}
		f.pool.Discard(s)
		if !fresh && !wrote {
			continue // stale pooled conn, nothing sent: safe to retry
		}
		return nil, err
	}
}

// --- transport.StreamFabric ---

// boundSession is a Session pinned to a (from, to) pair: either a live
// stream (one connection per session — the client runtime's participation
// sessions) or, when the peer did not negotiate streaming, a per-call
// fallback with identical semantics.
type boundSession struct {
	f        *Fabric
	s        *streamcore.Session // nil: per-call fallback
	from, to string
	elide    bool
	closed   bool
}

// Call implements transport.Session: the same injected-fault checks as
// Fabric.Call run per call, then the frame rides the pinned stream.
func (b *boundSession) Call(method string, payload any) (any, error) {
	if b.closed {
		return nil, fmt.Errorf("%w: session closed", transport.ErrCrashed)
	}
	if b.s == nil {
		return b.f.Call(b.from, b.to, method, payload)
	}
	if _, _, err := b.f.checkCall(b.from, b.to, method); err != nil {
		return nil, err
	}
	out, err, _ := b.s.Do(b.from, method, payload)
	return out, err
}

// ElidesAcks implements transport.ElidingSession: true only when this
// fabric has ack elision enabled, the peer negotiated the capability, and
// the session actually streams (a per-call fallback always acks).
func (b *boundSession) ElidesAcks() bool { return b.elide && b.s != nil && !b.closed }

// SendNoAck implements transport.ElidingSession: the same injected-fault
// checks run per elided call (fault parity frame by frame), then the
// no-ack frame queues to coalesce into the session's next flush. On a
// per-call fallback session it degrades to an ordinary acked call.
func (b *boundSession) SendNoAck(method string, payload any) error {
	if b.closed {
		return fmt.Errorf("%w: session closed", transport.ErrCrashed)
	}
	if b.s == nil {
		_, err := b.f.Call(b.from, b.to, method, payload)
		return err
	}
	if _, _, err := b.f.checkCall(b.from, b.to, method); err != nil {
		return err
	}
	return b.s.SendNoAck(b.from, method, payload)
}

// Close implements transport.Session; closing the stream is the server's
// signal that the session ended (dead clients are instead reaped by the
// aggregator's session TTL).
func (b *boundSession) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	if b.s != nil {
		b.f.pool.Discard(b.s)
	}
	return nil
}

// OpenSession implements transport.StreamFabric: one dedicated connection
// per session toward stream-capable peers, a transparent per-call fallback
// toward everyone else (the negotiation default of versioning rule 4). The
// session elides acks only when this fabric opted in and the peer
// advertised the capability — otherwise per-chunk acks keep flowing,
// bit-identically to the pre-elision protocol.
func (f *Fabric) OpenSession(from, to string) (transport.Session, error) {
	target, isLocal, err := f.checkCall(from, to, "open-session")
	if err != nil {
		return nil, err
	}
	caps := f.peerCapabilities(target, isLocal)
	if !caps.SupportsStream() {
		return &boundSession{f: f, from: from, to: to}, nil
	}
	s, err := f.openStreamSession(target, to, caps)
	if err != nil {
		return nil, fmt.Errorf("%w: %s unreachable: %v", transport.ErrCrashed, to, err)
	}
	return &boundSession{f: f, s: s, from: from, to: to, elide: f.ackElide && caps.SupportsAckElide()}, nil
}
