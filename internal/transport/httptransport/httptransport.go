// Package httptransport is the networked transport.Fabric: the same
// Coordinator/Aggregator/Selector control plane that runs over the
// in-memory Network in tests serves real traffic across OS processes and
// machines here, over plain stdlib net/http with the versioned wire codec
// (internal/transport/wire). This is the deployment step the paper takes
// for granted — PAPAYA's Section 4 components are data-center services —
// and the repo's ROADMAP names as the north star.
//
// One Fabric instance backs one process: nodes registered locally are
// served from this process's HTTP listener; calls to any other node are
// routed by name through a route table (name -> peer base URL) populated
// either statically (AddRoute) or by peers announcing themselves
// (Advertise). Every call — even node-to-node within one process — crosses
// the real HTTP stack, so a single-process deployment exercises exactly the
// code paths a multi-host one does.
//
// The fabric serves two route generations. /papaya/v1/ is the baseline:
// one uncompressed gob/json frame per POST. /papaya/v2/ adds the
// negotiated capabilities: frame bodies may be DEFLATE-compressed
// (Content-Encoding: deflate) and may use the binary fast-path codec
// (wire.Binary, Content-Type application/x-papaya-bin). Which generation
// and codec a call uses is negotiated, never assumed — peers exchange
// wire.Capabilities documents at discovery and advertisement, and a fabric
// sends v2 traffic only to peers that advertised the matching capability.
// A /v1/-only peer (an older build) keeps receiving exactly the v1 gob
// bytes it always did.
//
// The fabric also implements transport.FaultInjector with the in-memory
// backend's semantics (crashes, partitions, probabilistic drops, fixed
// latency), which is what lets the server conformance suite run the
// Appendix E.4 failure drills unchanged against both backends. Injected
// faults are per-fabric (this process's view); between real processes, a
// dead peer surfaces as a connection error and maps onto the same
// transport.ErrCrashed that components already retry through.
package httptransport

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/transport"
	"repro/internal/transport/streamcore"
	"repro/internal/transport/wire"
)

// Compile-time interface checks against the contracts in internal/transport.
var (
	_ transport.Fabric        = (*Fabric)(nil)
	_ transport.FaultInjector = (*Fabric)(nil)
)

const (
	apiPrefix   = "/papaya/v1"
	apiPrefixV2 = "/papaya/v2"
)

// Options configures a Fabric.
type Options struct {
	// Listen is the TCP listen address (e.g. "127.0.0.1:8070"; port 0
	// picks a free port).
	Listen string
	// Codec selects the preferred wire codec: "gob" (default), "json", or
	// "bin" (the binary fast path). "bin" is a negotiated capability: it
	// is used only toward peers whose discovery document advertised it,
	// with gob as the universal fallback, so a bin-preferring fabric
	// interoperates with /v1/ gob peers byte-for-byte unchanged. Serving
	// is codec-agnostic either way — every fabric decodes all three by
	// content type and answers in the codec the caller used.
	Codec string
	// AdvertiseURL is the base URL peers should use to reach this fabric.
	// Defaults to "http://<bound address>", which is correct on localhost;
	// set it explicitly when listening on 0.0.0.0 behind NAT or a proxy.
	AdvertiseURL string
	// Compress names the compress.Codec this fabric prefers on the wire
	// ("" or "none" disables). When the codec includes a streaming stage
	// (Streams() true, e.g. "streamed" or "flate"), whole RPC bodies to
	// APIv2 peers are additionally DEFLATE-compressed on the /v2/ route.
	// Decoding is always available regardless of this setting: every
	// fabric serves /v2/ and decodes every registered codec.
	Compress string
	// Stream routes calls toward stream-capable peers over cached
	// streaming sessions — one persistent /papaya/v2/stream connection per
	// (caller, callee) pair carrying length-prefixed frames — instead of
	// one POST per call. Like bin and deflate it is a negotiated /v2/
	// capability: peers that did not advertise wire.Capabilities.Stream
	// keep receiving per-POST traffic. Serving is unconditional — every
	// fabric accepts streams regardless of this setting.
	Stream bool
	// AckElide lets this fabric's streamed sessions send no-ack frames
	// toward peers that advertised the ack-elide capability
	// (wire.Capabilities.AckElide): non-final upload chunks ride the
	// stream unanswered and coalesce into batched writes. Off, every
	// streamed call keeps its per-frame acknowledgement. Serving no-ack
	// frames is unconditional — the knob only governs what this fabric
	// sends.
	AckElide bool
	// Seed seeds the probabilistic-loss RNG (SetLoss); 0 is a valid seed.
	Seed int64
	// CallTimeout bounds one RPC end to end (default 30s). The in-memory
	// fabric always returns, and every failover path is built on calls
	// failing fast — a blackholed peer must surface as an error, not a
	// stuck heartbeat loop that hangs shutdown.
	CallTimeout time.Duration
}

// Stats is the shared traffic-counter document (transport.Stats): outbound
// calls, request bytes written and response bytes read. The loadtest
// reports them as "bytes moved".
type Stats = transport.Stats

// Fabric is the HTTP-backed transport.Fabric for one process. It is safe
// for concurrent use.
type Fabric struct {
	codec        wire.Codec
	binPreferred bool       // Options.Codec was "bin": use it where negotiated
	fallback     wire.Codec // codec for peers that did not advertise bin
	baseURL      string
	srv          *http.Server
	ln           net.Listener
	client       *http.Client
	compressName string
	deflateBody  bool // compress codec streams: deflate /v2/ RPC bodies
	streamMode   bool // Options.Stream: prefer cached stream sessions
	// streamClient issues the long-lived /v2/stream POSTs. It shares the
	// pooled *http.Transport with client but has no overall timeout — a
	// stream lives for a whole session; per-call deadlines are enforced by
	// the session watchdog instead.
	streamClient *http.Client
	callTimeout  time.Duration
	ackElide     bool

	mu       sync.RWMutex
	local    map[string]transport.Handler
	routes   map[string]string            // node name -> peer base URL
	peerCaps map[string]wire.Capabilities // peer base URL -> advertised capabilities

	// Faults is the injected-fault table shared with the other networked
	// backend, promoted so Fabric implements transport.FaultInjector.
	transport.Faults

	// counters feed Stats; the per-POST path and the shared stream engine
	// both update them.
	counters streamcore.Counters

	// pool caches idle stream sessions per "<peer base URL>|<node>" key
	// (any caller may reuse one — the frame carries From) and tracks every
	// live fabric-opened session so Close can tear them down.
	pool *streamcore.Pool

	closeOnce sync.Once
}

// New binds the listener and starts serving. The returned fabric is ready
// for Register/Call immediately; Close releases the port.
func New(opts Options) (*Fabric, error) {
	codecName := opts.Codec
	if codecName == "" {
		codecName = "gob"
	}
	codec, err := wire.ByName(codecName)
	if err != nil {
		return nil, err
	}
	compressName := opts.Compress
	if compressName == "none" {
		compressName = ""
	}
	deflateBody := false
	if compressName != "" {
		cc, err := compress.ByName(compressName)
		if err != nil {
			return nil, err
		}
		deflateBody = cc.Streams()
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("httptransport: listen %s: %w", opts.Listen, err)
	}
	baseURL := opts.AdvertiseURL
	if baseURL == "" {
		baseURL = "http://" + ln.Addr().String()
	}
	callTimeout := opts.CallTimeout
	if callTimeout == 0 {
		callTimeout = 30 * time.Second
	}
	// One pooled *http.Transport per fabric with a generous idle pool: the
	// control plane makes many small concurrent calls to few hosts, the
	// worst case for net/http's default 2-per-host idle cap.
	tr := &http.Transport{MaxIdleConnsPerHost: 64, MaxIdleConns: 256}
	f := &Fabric{
		codec:        codec,
		binPreferred: codec.Name() == "bin",
		fallback:     wire.Gob{},
		baseURL:      baseURL,
		ln:           ln,
		compressName: compressName,
		deflateBody:  deflateBody,
		streamMode:   opts.Stream,
		callTimeout:  callTimeout,
		ackElide:     opts.AckElide,
		local:        make(map[string]transport.Handler),
		routes:       make(map[string]string),
		peerCaps:     make(map[string]wire.Capabilities),
		pool:         streamcore.NewPool(maxIdleStreamsPerPeer),
		client:       &http.Client{Transport: tr, Timeout: callTimeout},
		streamClient: &http.Client{Transport: tr},
	}
	f.InitFaults(opts.Seed)
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+apiPrefix+"/rpc/{node}", f.handleRPC)
	mux.HandleFunc("GET "+apiPrefix+"/nodes", f.handleNodes)
	mux.HandleFunc("POST "+apiPrefix+"/advertise", f.handleAdvertise)
	// The /v2/ generation (negotiated capabilities): same surface, but RPC
	// bodies may be DEFLATE-compressed, and /stream carries a whole
	// session of length-prefixed frames over one connection. Both
	// generations are always served; peers choose per call based on what
	// we advertised.
	mux.HandleFunc("POST "+apiPrefixV2+"/rpc/{node}", f.handleRPC)
	mux.HandleFunc("GET "+apiPrefixV2+"/nodes", f.handleNodes)
	mux.HandleFunc("POST "+apiPrefixV2+"/advertise", f.handleAdvertise)
	mux.HandleFunc("POST "+apiPrefixV2+"/stream/{node}", f.handleStream)
	f.srv = &http.Server{Handler: mux}
	go func() { _ = f.srv.Serve(ln) }()
	return f, nil
}

// BaseURL returns the URL peers use to reach this fabric.
func (f *Fabric) BaseURL() string { return f.baseURL }

// CodecName returns the active wire codec's name.
func (f *Fabric) CodecName() string { return f.codec.Name() }

// CompressName returns the preferred wire-compression codec name
// (Options.Compress; "" when compression is disabled).
func (f *Fabric) CompressName() string { return f.compressName }

// Stats returns a snapshot of the fabric's traffic counters.
func (f *Fabric) Stats() Stats { return f.counters.Snapshot() }

// Close stops serving, tears down live stream sessions, and closes idle
// connections. It is idempotent.
func (f *Fabric) Close() error {
	var err error
	f.closeOnce.Do(func() {
		f.pool.Close()
		err = f.srv.Close()
		f.client.CloseIdleConnections()
	})
	return err
}

// Register attaches a node served from this process. Re-registering a name
// replaces its handler and clears any crash marker (a restarted process).
func (f *Fabric) Register(name string, h transport.Handler) {
	if h == nil {
		panic("httptransport: nil handler")
	}
	f.mu.Lock()
	f.local[name] = h
	f.mu.Unlock()
	f.ClearCrash(name)
}

// Unregister detaches a locally served node.
func (f *Fabric) Unregister(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.local, name)
}

// AddRoute teaches this fabric that node lives at a peer fabric's base URL.
func (f *Fabric) AddRoute(node, baseURL string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.routes[node] = baseURL
}

// Nodes returns the locally served, non-crashed node names, sorted.
func (f *Fabric) Nodes() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.local))
	for name := range f.local {
		if !f.Crashed(name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Routes returns a copy of the remote routes this fabric knows (node name
// -> base URL), from AddRoute, Advertise/Discover exchanges, and gossip.
// It is what selfDoc gossips onward.
func (f *Fabric) Routes() map[string]string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]string, len(f.routes))
	for node, base := range f.routes {
		out[node] = base
	}
	return out
}

// --- client side ---

// checkCall resolves where to reach to and applies the injected-fault
// checks in the in-memory Network's order (unknown node first, then the
// shared transport.Faults table). Both the per-POST path and every
// stream-session call run through it, so fault parity holds regardless of
// how the bytes travel.
func (f *Fabric) checkCall(from, to, method string) (target string, isLocal bool, err error) {
	f.mu.RLock()
	_, isLocal = f.local[to]
	route := f.routes[to]
	f.mu.RUnlock()

	target = route
	if isLocal {
		target = f.baseURL
	}
	if target == "" {
		return "", false, fmt.Errorf("%w: %s", transport.ErrUnknownNode, to)
	}
	if err := f.CheckCall(from, to, method); err != nil {
		return "", false, err
	}
	return target, isLocal, nil
}

// Call implements transport.Fabric: fault checks mirror the in-memory
// Network's order, then one HTTP POST to wherever the callee lives —
// through the loopback listener when it is this same process, so every
// call exercises the full wire path. Under Options.Stream, calls toward
// peers that negotiated the stream capability ride a cached streaming
// session instead of a fresh POST.
func (f *Fabric) Call(from, to, method string, payload any) (any, error) {
	target, isLocal, err := f.checkCall(from, to, method)
	if err != nil {
		return nil, err
	}
	if f.streamMode {
		if caps := f.peerCapabilities(target, isLocal); caps.SupportsStream() {
			return f.streamCall(from, to, target, method, payload, caps)
		}
	}
	return f.postCall(from, to, target, isLocal, method, payload)
}

// postCall is the per-POST request path (the /v1/-era behaviour every peer
// supports): encode one frame, POST it, decode one response.
func (f *Fabric) postCall(from, to, target string, isLocal bool, method string, payload any) (any, error) {
	// Per-peer codec negotiation (wire versioning rule 4): the binary fast
	// path is used only toward peers that advertised it; everyone else —
	// including every /v1/ peer, whose document advertises nothing — gets
	// the gob fallback on the route generation it always had.
	caps := f.peerCapabilities(target, isLocal)
	enc := f.codec
	if f.binPreferred && !caps.SupportsBinary() {
		enc = f.fallback
	}

	var body []byte
	var err error
	framePooled := false
	if app, ok := enc.(wire.Appender); ok {
		// Allocation-free encode: the frame buffer is recycled once the
		// request has been fully sent (client.Do is synchronous).
		body, err = app.AppendRequest(getFrame(), &wire.Request{From: from, Method: method, Payload: payload})
		framePooled = err == nil
	} else {
		body, err = enc.EncodeRequest(&wire.Request{From: from, Method: method, Payload: payload})
	}
	if err != nil {
		return nil, fmt.Errorf("httptransport: encoding %s call to %s: %w", method, to, err)
	}
	defer func() {
		if framePooled {
			putFrame(body)
		}
	}()

	// Route-generation choice: bin frames always ride /v2/ (they are a
	// /v2/ capability); the deflate body stage additionally applies when
	// our compress codec streams and the peer advertised APIv2. Tiny
	// control frames stay raw: DEFLATE framing would outweigh the savings.
	prefix := apiPrefix
	useBin := enc.Name() == "bin"
	v2 := f.deflateBody && caps.SupportsCompression()
	if useBin || v2 {
		prefix = apiPrefixV2
	}
	deflated := false
	if v2 && len(body) >= deflateMinBytes {
		if packed, derr := compress.DeflateBytes(body); derr == nil && len(packed) < len(body) {
			if framePooled {
				putFrame(body)
				framePooled = false
			}
			body, deflated = packed, true
		}
	}
	f.counters.Calls.Add(1)
	f.counters.BytesSent.Add(uint64(len(body)))
	httpReq, err := http.NewRequest(http.MethodPost, target+prefix+"/rpc/"+url.PathEscape(to), bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("httptransport: building %s call to %s: %w", method, to, err)
	}
	httpReq.Header.Set("Content-Type", enc.ContentType())
	if deflated {
		httpReq.Header.Set("Content-Encoding", "deflate")
	}
	if v2 {
		httpReq.Header.Set("Accept-Encoding", "deflate")
	}
	httpResp, err := f.client.Do(httpReq)
	if err != nil {
		// Connection-level failure: the peer process is gone or unreachable
		// — the networked equivalent of a crashed node.
		return nil, fmt.Errorf("%w: %s unreachable: %v", transport.ErrCrashed, to, err)
	}
	raw, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("%w: %s: reading response: %v", transport.ErrCrashed, to, err)
	}
	f.counters.BytesReceived.Add(uint64(len(raw)))
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httptransport: %s returned HTTP %d: %s", to, httpResp.StatusCode, raw)
	}
	if httpResp.Header.Get("Content-Encoding") == "deflate" {
		if raw, err = compress.InflateBytes(raw, maxRPCBodyBytes); err != nil {
			return nil, fmt.Errorf("httptransport: inflating response from %s: %w", to, err)
		}
	}
	// The peer answers in the codec we called with.
	resp, err := enc.DecodeResponse(raw)
	if err != nil {
		return nil, fmt.Errorf("httptransport: decoding response from %s: %w", to, err)
	}
	if resp.Kind != "" {
		return nil, transport.KindToError(resp.Kind, resp.Err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Payload, nil
}

// deflateMinBytes is the body size below which the /v2/ deflate stage is
// skipped: DEFLATE adds fixed framing overhead, so compressing a 60-byte
// ack frame makes it bigger.
const deflateMinBytes = 256

// maxRPCBodyBytes bounds one RPC body in either direction, raw or
// inflated (64 MiB ≈ a 16M-parameter checkpoint frame). It is both the
// read limit on incoming requests and the inflation cap for deflated
// /v2/ bodies, so a small deflate bomb cannot force a huge allocation.
const maxRPCBodyBytes = 64 << 20

// peerCapabilities returns the capability document governing calls to
// target. Locally served nodes get this build's own full document (the
// loopback listener serves /v2/ and decodes every codec); unknown peers
// get the zero value, i.e. /v1/ baseline.
func (f *Fabric) peerCapabilities(target string, isLocal bool) wire.Capabilities {
	if isLocal {
		return selfCapabilities()
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.peerCaps[target]
}

// selfCapabilities is this build's own capability document: every build
// that links this code serves /v2/, decodes every registered codec and
// compression, accepts streaming sessions, and serves no-ack frames.
func selfCapabilities() wire.Capabilities {
	return wire.Capabilities{
		API:      wire.APIv2,
		Compress: compress.Names(),
		Codecs:   wire.DecodableCodecs(),
		Stream:   true,
		Trace:    true,
		AckElide: true,
	}
}

// getFrame and putFrame delegate to the shared engine's frame pool —
// per-POST frames and stream frames recycle through one pool; with an
// append-capable codec (wire.Appender) the encode path allocates nothing
// once the pool is warm.
func getFrame() []byte  { return streamcore.GetFrame() }
func putFrame(b []byte) { streamcore.PutFrame(b) }

// --- server side ---

// respond writes one wire response in the given codec (the one the caller
// used); when the caller asked for deflate (the /v2/ compression
// capability's Accept-Encoding), a large-enough response body is deflated.
// Append-capable codecs encode into a pooled frame buffer.
func (f *Fabric) respond(w http.ResponseWriter, codec wire.Codec, resp *wire.Response, deflated bool) {
	var body []byte
	var err error
	framePooled := false
	if app, ok := codec.(wire.Appender); ok {
		body, err = app.AppendResponse(getFrame(), resp)
		framePooled = err == nil
	} else {
		body, err = codec.EncodeResponse(resp)
	}
	if err != nil {
		// Encoding an already-handled response failed (unregistered return
		// type): surface it as an application error instead of silence.
		body, err = codec.EncodeResponse(&wire.Response{Err: "httptransport: encoding response: " + err.Error()})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", codec.ContentType())
	if deflated && len(body) >= deflateMinBytes {
		if packed, derr := compress.DeflateBytes(body); derr == nil && len(packed) < len(body) {
			w.Header().Set("Content-Encoding", "deflate")
			if framePooled {
				putFrame(body)
				framePooled = false
			}
			body = packed
		}
	}
	_, _ = w.Write(body)
	if framePooled {
		putFrame(body)
	}
}

// handleRPC serves both route generations: /v1/ bodies are raw frames;
// /v2/ bodies may additionally be deflated (Content-Encoding: deflate)
// and/or use the binary fast-path codec. The request's Content-Type picks
// the decoder, and the response answers in the same codec, so one fabric
// serves gob, json, and bin callers simultaneously — which is what lets a
// bin-preferring peer talk to a gob-configured server once capabilities
// are exchanged.
func (f *Fabric) handleRPC(w http.ResponseWriter, r *http.Request) {
	node := r.PathValue("node")
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRPCBodyBytes))
	if err != nil {
		http.Error(w, "reading request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Compression headers are honored only on the /v2/ generation: the
	// /v1/ route must keep emitting exactly the bytes it always did
	// (versioning rule 4), even toward generic HTTP clients that send
	// Accept-Encoding by default.
	isV2 := strings.HasPrefix(r.URL.Path, apiPrefixV2)
	if isV2 && r.Header.Get("Content-Encoding") == "deflate" {
		if raw, err = compress.InflateBytes(raw, maxRPCBodyBytes); err != nil {
			http.Error(w, "inflating request: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	deflated := isV2 && strings.Contains(r.Header.Get("Accept-Encoding"), "deflate")
	codec := f.codec
	if byCT, ok := wire.ByContentType(r.Header.Get("Content-Type")); ok {
		codec = byCT
	}
	if codec.Name() == "bin" && !isV2 {
		// bin is a /v2/ capability; a bin frame on /v1/ is a peer bug.
		http.Error(w, "binary frames require the /v2/ route", http.StatusBadRequest)
		return
	}
	req, err := codec.DecodeRequest(raw)
	if err != nil {
		// Includes version mismatches: a frame from an incompatible build
		// fails loudly here (wire versioning rule 1).
		http.Error(w, "decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Request payloads whose decoder leased pooled vectors are released
	// once the handler and the response encode are done; handlers copy
	// what they keep (the in-memory fabric shares payload memory with
	// callers under the same contract).
	defer func() {
		if lease, ok := req.Payload.(wire.BufferLease); ok {
			lease.ReleaseBinaryBuffers()
		}
	}()

	resp := f.invoke(node, req)
	f.respond(w, codec, resp, deflated)
	// Pooled response vectors (a download's model snapshot) are done once
	// the frame is written.
	if lease, ok := resp.Payload.(wire.ResponseBufferLease); ok {
		lease.ReleaseResponseBuffers()
	}
}

// invoke runs the server-side fault checks and the handler for one decoded
// request addressed to node — the dispatch shared by the per-POST route and
// every frame of a stream. The caller encodes the response and afterwards
// releases any wire.ResponseBufferLease payload.
func (f *Fabric) invoke(node string, req *wire.Request) *wire.Response {
	f.mu.RLock()
	h, ok := f.local[node]
	f.mu.RUnlock()

	switch {
	case !ok:
		return &wire.Response{Kind: transport.KindUnknownNode, Err: node}
	case f.Crashed(node):
		return &wire.Response{Kind: transport.KindCrashed, Err: node}
	case f.Cut(req.From, node):
		return &wire.Response{Kind: transport.KindPartitioned, Err: req.From + " <-> " + node}
	}
	out, err := safeInvoke(h, req.Method, req.Payload)
	if err != nil {
		return &wire.Response{Kind: transport.ErrorToKind(err), Err: err.Error()}
	}
	return &wire.Response{Payload: out}
}

// safeInvoke contains handler panics. In-memory callers are trusted code,
// but network peers are not: a well-formed frame carrying the wrong
// registered type for a method would otherwise panic the handler's type
// assertion — a remote crash lever. The panic becomes an ordinary
// application error on the wire.
func safeInvoke(h transport.Handler, method string, payload any) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("httptransport: handler panic on %q: %v", method, r)
		}
	}()
	return h(method, payload)
}

// nodesDoc is the GET /nodes and /advertise body: which nodes a fabric
// serves, where, and what it is capable of. The capability fields are the
// negotiation surface of wire versioning rule 4 — a /v1/ build's document
// simply lacks them, and the zero value means "baseline only".
type nodesDoc struct {
	BaseURL string   `json:"base_url"`
	Nodes   []string `json:"nodes"`
	// Routes gossips the remote routes this fabric has learned (node name
	// -> base URL of the fabric serving it), making discovery transitive: a
	// selector that Discovers only the coordinator still learns where every
	// advertised aggregator lives, without a full-mesh advertise. Absent
	// from /v1/-era documents; receivers treat it as best-effort hints —
	// local registrations always win over gossiped routes.
	Routes map[string]string `json:"routes,omitempty"`
	wire.Capabilities
}

// selfDoc describes this fabric: every build that links this code serves
// /v2/, decodes every registered compression codec, decodes every wire
// codec (including the binary fast path) regardless of its own preference,
// and accepts streaming sessions on /papaya/v2/stream.
func (f *Fabric) selfDoc() nodesDoc {
	return nodesDoc{
		BaseURL:      f.baseURL,
		Nodes:        f.Nodes(),
		Routes:       f.Routes(),
		Capabilities: selfCapabilities(),
	}
}

// recordPeer stores a peer's routes and advertised capabilities. Routes
// the peer gossiped about third-party fabrics are adopted as-is (newest
// gossip wins, so a node that moved is re-learned on the next exchange);
// nodes this fabric serves locally are skipped — call resolution prefers
// local registration anyway, and recording a gossiped route for them would
// only confuse Routes() readers.
func (f *Fabric) recordPeer(doc nodesDoc) {
	for _, node := range doc.Nodes {
		f.AddRoute(node, doc.BaseURL)
	}
	for node, base := range doc.Routes {
		f.mu.RLock()
		_, isLocal := f.local[node]
		f.mu.RUnlock()
		if !isLocal && base != f.baseURL {
			f.AddRoute(node, base)
		}
	}
	f.mu.Lock()
	f.peerCaps[doc.BaseURL] = doc.Capabilities
	f.mu.Unlock()
}

// PeerCapabilities returns what the fabric at baseURL advertised (the zero
// value for unknown or /v1/ peers).
func (f *Fabric) PeerCapabilities(baseURL string) wire.Capabilities {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.peerCaps[baseURL]
}

func (f *Fabric) handleNodes(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(f.selfDoc())
}

func (f *Fabric) handleAdvertise(w http.ResponseWriter, r *http.Request) {
	var doc nodesDoc
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		http.Error(w, "decoding advertisement: "+err.Error(), http.StatusBadRequest)
		return
	}
	if doc.BaseURL == "" {
		http.Error(w, "advertisement missing base_url", http.StatusBadRequest)
		return
	}
	f.recordPeer(doc)
	f.handleNodes(w, r)
}

// Advertise announces this fabric's locally served nodes to the peer fabric
// at peerURL, so the peer can route calls back here (an agent process
// announcing its Aggregator to the coordinator process), and returns the
// peer's own node list for symmetric route setup.
func (f *Fabric) Advertise(peerURL string) ([]string, error) {
	body, err := json.Marshal(f.selfDoc())
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Post(peerURL+apiPrefix+"/advertise", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("httptransport: advertising to %s: %w", peerURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("httptransport: advertise to %s: HTTP %d: %s", peerURL, resp.StatusCode, msg)
	}
	var doc nodesDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	f.recordPeer(doc)
	return doc.Nodes, nil
}

// Discover fetches the node inventory of the fabric at baseURL, adds a
// route for every node it serves, and records its advertised capabilities
// — the client-side entry point for capability negotiation (`papaya
// loadtest` uses it instead of the capability-blind ListNodes).
func (f *Fabric) Discover(baseURL string) ([]string, error) {
	doc, err := fetchNodesDoc(f.client, baseURL)
	if err != nil {
		return nil, err
	}
	// Route through the URL this fabric actually reached the peer at, not
	// the peer's advertised base URL: behind port forwarding or NAT the
	// advertised address may be unreachable from here. Capabilities are
	// keyed the same way, so negotiation agrees with routing.
	doc.BaseURL = baseURL
	f.recordPeer(doc)
	return doc.Nodes, nil
}

// fetchNodesDoc fetches and decodes a peer's discovery document — the
// shared core of Discover and ListNodes.
func fetchNodesDoc(c *http.Client, baseURL string) (nodesDoc, error) {
	resp, err := c.Get(baseURL + apiPrefix + "/nodes")
	if err != nil {
		return nodesDoc{}, fmt.Errorf("httptransport: listing nodes at %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nodesDoc{}, fmt.Errorf("httptransport: list nodes at %s: HTTP %d: %s", baseURL, resp.StatusCode, msg)
	}
	var doc nodesDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nodesDoc{}, err
	}
	return doc, nil
}

// ListNodes fetches the node inventory of the fabric at baseURL without a
// Fabric of its own — for tooling that only wants names. It records no
// routes and no capabilities; a process that will go on to make calls
// should use Fabric.Discover so /v2/ negotiation can happen.
func ListNodes(baseURL string) ([]string, error) {
	doc, err := fetchNodesDoc(http.DefaultClient, baseURL)
	if err != nil {
		return nil, err
	}
	return doc.Nodes, nil
}
