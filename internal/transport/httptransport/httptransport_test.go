package httptransport_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/transport"
	"repro/internal/transport/httptransport"
)

func newFabric(t *testing.T, codec string) *httptransport.Fabric {
	t.Helper()
	f, err := httptransport.New(httptransport.Options{Listen: "127.0.0.1:0", Codec: codec, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f
}

// echoHandler returns the payload and method it was called with.
func echoHandler(method string, payload any) (any, error) {
	if req, ok := payload.(server.JoinRequest); ok {
		return server.JoinResponse{Accepted: true, SessionID: uint64(req.ClientID), Version: 7}, nil
	}
	if s, ok := payload.(string); ok {
		return "echo:" + method + ":" + s, nil
	}
	return payload, nil
}

func TestCallRoundTripBothCodecs(t *testing.T) {
	for _, codec := range []string{"gob", "json"} {
		t.Run(codec, func(t *testing.T) {
			f := newFabric(t, codec)
			f.Register("node-a", echoHandler)

			// Struct payload and struct response.
			resp, err := f.Call("tester", "node-a", "join", server.JoinRequest{TaskID: "t", ClientID: 42})
			if err != nil {
				t.Fatal(err)
			}
			jr, ok := resp.(server.JoinResponse)
			if !ok {
				t.Fatalf("response type %T, want server.JoinResponse", resp)
			}
			if !jr.Accepted || jr.SessionID != 42 || jr.Version != 7 {
				t.Fatalf("round trip mangled response: %+v", jr)
			}

			// String payload (register-aggregator / task-info style).
			resp, err = f.Call("tester", "node-a", "m", "hello")
			if err != nil {
				t.Fatal(err)
			}
			if resp != "echo:m:hello" {
				t.Fatalf("string round trip = %v", resp)
			}

			// Nil payload (map-request style).
			resp, err = f.Call("tester", "node-a", "nilcall", nil)
			if err != nil {
				t.Fatal(err)
			}
			if resp != nil {
				t.Fatalf("nil payload round trip = %v, want nil", resp)
			}
		})
	}
}

func TestNestedAnyPayloadCrossesWire(t *testing.T) {
	// RouteRequest carries an interface-typed payload — the hardest message
	// for a wire format. Both codecs must preserve the inner concrete type.
	for _, codec := range []string{"gob", "json"} {
		t.Run(codec, func(t *testing.T) {
			f := newFabric(t, codec)
			f.Register("sel", func(method string, payload any) (any, error) {
				rr := payload.(server.RouteRequest)
				chunk, ok := rr.Payload.(server.UploadChunk)
				if !ok {
					t.Errorf("inner payload type %T, want server.UploadChunk", rr.Payload)
					return nil, errors.New("bad inner type")
				}
				return server.UploadResponse{OK: chunk.Done, Reason: rr.Method}, nil
			})
			resp, err := f.Call("client", "sel", "route", server.RouteRequest{
				TaskID: "t", Method: "upload-chunk",
				Payload: server.UploadChunk{TaskID: "t", SessionID: 3, Data: []float32{1, 2}, Done: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			ur := resp.(server.UploadResponse)
			if !ur.OK || ur.Reason != "upload-chunk" {
				t.Fatalf("nested round trip = %+v", ur)
			}
		})
	}
}

func TestAppErrorCrossesWire(t *testing.T) {
	f := newFabric(t, "gob")
	f.Register("node-a", func(string, any) (any, error) {
		return nil, errors.New("task \"ghost\" not assigned here")
	})
	_, err := f.Call("tester", "node-a", "m", nil)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("app error lost: %v", err)
	}
	// App errors must NOT map onto transport sentinels.
	for _, sentinel := range []error{transport.ErrCrashed, transport.ErrDropped,
		transport.ErrPartitioned, transport.ErrUnknownNode} {
		if errors.Is(err, sentinel) {
			t.Fatalf("app error classified as %v", sentinel)
		}
	}
}

// TestFaultParity is the ErrDropped/ErrCrashed/ErrPartitioned/ErrUnknownNode
// contract: every fault the in-memory Network can inject maps onto the same
// sentinel error over HTTP, so failover logic behaves identically.
func TestFaultParity(t *testing.T) {
	f := newFabric(t, "gob")
	f.Register("a", echoHandler)
	f.Register("b", echoHandler)

	t.Run("unknown node", func(t *testing.T) {
		_, err := f.Call("a", "ghost", "m", nil)
		if !errors.Is(err, transport.ErrUnknownNode) {
			t.Fatalf("err = %v, want ErrUnknownNode", err)
		}
	})

	t.Run("crashed callee", func(t *testing.T) {
		f.Crash("b")
		if _, err := f.Call("a", "b", "m", nil); !errors.Is(err, transport.ErrCrashed) {
			t.Fatalf("err = %v, want ErrCrashed", err)
		}
	})

	t.Run("crashed caller", func(t *testing.T) {
		if _, err := f.Call("b", "a", "m", nil); !errors.Is(err, transport.ErrCrashed) {
			t.Fatalf("err = %v, want ErrCrashed (sender)", err)
		}
		f.Register("b", echoHandler) // restart clears the crash
		if _, err := f.Call("b", "a", "m", nil); err != nil {
			t.Fatalf("restarted node still crashed: %v", err)
		}
	})

	t.Run("partition and heal", func(t *testing.T) {
		f.Partition("a", "b")
		if _, err := f.Call("a", "b", "m", nil); !errors.Is(err, transport.ErrPartitioned) {
			t.Fatalf("err = %v, want ErrPartitioned", err)
		}
		if _, err := f.Call("b", "a", "m", nil); !errors.Is(err, transport.ErrPartitioned) {
			t.Fatalf("reverse direction err = %v, want ErrPartitioned", err)
		}
		f.Heal("a", "b")
		if _, err := f.Call("a", "b", "m", nil); err != nil {
			t.Fatalf("healed partition still cut: %v", err)
		}
	})

	t.Run("probabilistic drop", func(t *testing.T) {
		f.SetLoss(0.5)
		defer f.SetLoss(0)
		dropped := 0
		for i := 0; i < 50; i++ {
			if _, err := f.Call("a", "b", "m", nil); err != nil {
				if !errors.Is(err, transport.ErrDropped) {
					t.Fatalf("err = %v, want ErrDropped", err)
				}
				dropped++
			}
		}
		if dropped == 0 || dropped == 50 {
			t.Fatalf("dropped %d/50 calls at p=0.5", dropped)
		}
	})

	t.Run("dead process maps to ErrCrashed", func(t *testing.T) {
		peer := newFabric(t, "gob")
		peer.Register("remote", echoHandler)
		f.AddRoute("remote", peer.BaseURL())
		if _, err := f.Call("a", "remote", "m", nil); err != nil {
			t.Fatalf("live peer call failed: %v", err)
		}
		// Kill the peer process's listener: connection-level failures are
		// the networked form of a crash.
		_ = peer.Close()
		if _, err := f.Call("a", "remote", "m", nil); !errors.Is(err, transport.ErrCrashed) {
			t.Fatalf("err = %v, want ErrCrashed after peer death", err)
		}
	})
}

func TestLatencyInjection(t *testing.T) {
	f := newFabric(t, "gob")
	f.Register("a", echoHandler)
	f.SetLatency(30 * time.Millisecond)
	start := time.Now()
	if _, err := f.Call("x", "a", "m", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("call took %v, want >= 30ms injected latency", d)
	}
}

func TestAdvertiseAndDiscovery(t *testing.T) {
	coordSide := newFabric(t, "gob")
	coordSide.Register("coordinator", echoHandler)
	coordSide.Register("sel-0", echoHandler)

	agentSide := newFabric(t, "gob")
	agentSide.Register("agg-remote", func(method string, payload any) (any, error) {
		return "agg says hi", nil
	})

	// The agent announces itself and learns the coordinator's nodes.
	peerNodes, err := agentSide.Advertise(coordSide.BaseURL())
	if err != nil {
		t.Fatal(err)
	}
	if len(peerNodes) != 2 {
		t.Fatalf("peer nodes = %v", peerNodes)
	}
	// Agent -> coordinator (learned via Advertise response).
	if _, err := agentSide.Call("agg-remote", "coordinator", "m", "x"); err != nil {
		t.Fatalf("agent -> coordinator: %v", err)
	}
	// Coordinator -> agent (learned via the advertisement).
	resp, err := coordSide.Call("coordinator", "agg-remote", "assign-task", nil)
	if err != nil {
		t.Fatalf("coordinator -> agent: %v", err)
	}
	if resp != "agg says hi" {
		t.Fatalf("cross-process response = %v", resp)
	}

	// ListNodes: the fabric-less inventory fetch (the loadtest itself now
	// uses Fabric.Discover, which also records capabilities).
	names, err := httptransport.ListNodes(coordSide.BaseURL())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "coordinator" || names[1] != "sel-0" {
		t.Fatalf("ListNodes = %v", names)
	}
}

func TestStatsCountTraffic(t *testing.T) {
	f := newFabric(t, "gob")
	f.Register("a", echoHandler)
	before := f.Stats()
	if _, err := f.Call("x", "a", "m", "payload"); err != nil {
		t.Fatal(err)
	}
	after := f.Stats()
	if after.Calls != before.Calls+1 || after.BytesSent <= before.BytesSent ||
		after.BytesReceived <= before.BytesReceived {
		t.Fatalf("stats did not advance: %+v -> %+v", before, after)
	}
}

// TestRouteGossipIsTransitive: an agent advertises to the coordinator's
// fabric; a selector that only Discovers the coordinator must learn the
// agent's route from the gossiped document and reach it directly — no
// full-mesh advertisement.
func TestRouteGossipIsTransitive(t *testing.T) {
	coordSide := newFabric(t, "gob")
	coordSide.Register("coordinator", echoHandler)

	agentSide := newFabric(t, "gob")
	agentSide.Register("agg-g", func(method string, payload any) (any, error) {
		return "agg-g here", nil
	})
	if _, err := agentSide.Advertise(coordSide.BaseURL()); err != nil {
		t.Fatal(err)
	}

	selSide := newFabric(t, "gob")
	selSide.Register("sel-g", echoHandler)
	if _, err := selSide.Discover(coordSide.BaseURL()); err != nil {
		t.Fatal(err)
	}
	if got := selSide.Routes()["agg-g"]; got != agentSide.BaseURL() {
		t.Fatalf("gossiped route for agg-g = %q, want %q", got, agentSide.BaseURL())
	}
	out, err := selSide.Call("sel-g", "agg-g", "join", nil)
	if err != nil {
		t.Fatalf("selector -> gossiped agent: %v", err)
	}
	if out != "agg-g here" {
		t.Fatalf("gossiped-route response = %v", out)
	}
}
