package httptransport_test

// Tests for the HTTP streaming session backend: one long-lived POST on
// /papaya/v2/stream carrying a pipelined sequence of length-prefixed
// frames. The fault-parity contract must hold per frame (injected crashes
// and partitions take effect mid-stream), sessions must degrade to
// per-call RPC toward peers that did not negotiate the capability, and
// closing a fabric must not leak the stream-serving goroutines.

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/transport"
	"repro/internal/transport/httptransport"
)

func newStreamFabric(t *testing.T, opts httptransport.Options) *httptransport.Fabric {
	t.Helper()
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	f, err := httptransport.New(opts)
	if err != nil {
		t.Fatalf("starting fabric: %v", err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f
}

// TestStreamOpenFailsFastWhenPeerNeverResponds: a peer that accepts the
// stream-open POST but never sends response headers (a tier member dying
// between accept and response, as a fleet failover storm produces) must
// surface as a timely error, not a wedge. Regression: Do cannot return
// until the transport's write loop exits, the write loop blocks reading
// the session's body pipe, and context cancellation cannot interrupt a
// body Read — the open timer must close the pipe too.
func TestStreamOpenFailsFastWhenPeerNeverResponds(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stubURL := "http://" + ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /papaya/v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"base_url":%q,"nodes":["victim"],"api":2,"stream":true}`, stubURL)
	})
	mux.HandleFunc("POST /papaya/v2/stream/victim", func(w http.ResponseWriter, r *http.Request) {
		<-release // mute: no headers, no body read
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	f := newStreamFabric(t, httptransport.Options{CallTimeout: 300 * time.Millisecond})
	if _, err := f.Discover(stubURL); err != nil {
		t.Fatalf("discovering stub: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		sess, err := f.OpenSession("caller", "victim")
		if err == nil {
			sess.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("open against a mute peer unexpectedly succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OpenSession wedged on a mute peer (write loop never released)")
	}
}

// TestStreamSessionPipelinesCalls drives many calls through one explicit
// session and checks they all dispatch to the registered handler in order.
func TestStreamSessionPipelinesCalls(t *testing.T) {
	for _, codec := range []string{"gob", "bin", "json"} {
		t.Run(codec, func(t *testing.T) {
			f := newStreamFabric(t, httptransport.Options{Codec: codec})
			var got []string
			f.Register("echo", func(method string, payload any) (any, error) {
				got = append(got, method)
				return payload, nil
			})
			sess, err := f.OpenSession("caller", "echo")
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			for i := 0; i < 20; i++ {
				out, err := sess.Call(fmt.Sprintf("m%d", i), fmt.Sprintf("payload-%d", i))
				if err != nil {
					t.Fatalf("call %d: %v", i, err)
				}
				if out != fmt.Sprintf("payload-%d", i) {
					t.Fatalf("call %d echoed %v", i, out)
				}
			}
			if len(got) != 20 || got[0] != "m0" || got[19] != "m19" {
				t.Fatalf("handler saw %v", got)
			}
		})
	}
}

// TestStreamCallModeUsesOneConnection: under Options.Stream, repeated
// Fabric.Call invocations ride cached sessions; the handler still sees
// every call and fault semantics are preserved.
func TestStreamCallModeUsesOneConnection(t *testing.T) {
	f := newStreamFabric(t, httptransport.Options{Stream: true, Codec: "bin"})
	calls := 0
	f.Register("node", func(method string, payload any) (any, error) {
		calls++
		return true, nil
	})
	for i := 0; i < 10; i++ {
		if _, err := f.Call("caller", "node", "ping", nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if calls != 10 {
		t.Fatalf("handler saw %d calls", calls)
	}
}

// TestStreamFaultParityMidSession: crash and partition markers must take
// effect on the next streamed call, exactly as they do per POST.
func TestStreamFaultParityMidSession(t *testing.T) {
	f := newStreamFabric(t, httptransport.Options{})
	f.Register("node", func(method string, payload any) (any, error) { return true, nil })
	sess, err := f.OpenSession("caller", "node")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if _, err := sess.Call("ping", nil); err != nil {
		t.Fatalf("healthy call: %v", err)
	}
	f.Crash("node")
	if _, err := sess.Call("ping", nil); !errors.Is(err, transport.ErrCrashed) {
		t.Fatalf("crashed callee error = %v, want ErrCrashed", err)
	}
	f.Register("node", func(method string, payload any) (any, error) { return true, nil })
	if _, err := sess.Call("ping", nil); err != nil {
		t.Fatalf("restarted callee: %v", err)
	}
	f.Partition("caller", "node")
	if _, err := sess.Call("ping", nil); !errors.Is(err, transport.ErrPartitioned) {
		t.Fatalf("partitioned error = %v, want ErrPartitioned", err)
	}
	f.Heal("caller", "node")
	if _, err := sess.Call("ping", nil); err != nil {
		t.Fatalf("healed call: %v", err)
	}
	f.Crash("caller")
	if _, err := sess.Call("ping", nil); !errors.Is(err, transport.ErrCrashed) {
		t.Fatalf("crashed caller error = %v, want ErrCrashed", err)
	}
}

// TestStreamDegradesToPerCallForV1Peers: a session toward a peer that never
// advertised the stream capability (an unknown remote, i.e. a /v1/ peer)
// must transparently fall back to per-call POSTs.
func TestStreamDegradesToPerCallForV1Peers(t *testing.T) {
	server := newStreamFabric(t, httptransport.Options{})
	server.Register("node", func(method string, payload any) (any, error) { return "ok", nil })
	caller := newStreamFabric(t, httptransport.Options{})
	// AddRoute without Discover: the peer's capabilities stay unknown (the
	// zero document — a /v1/ peer).
	caller.AddRoute("node", server.BaseURL())

	sess, err := caller.OpenSession("caller", "node")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	out, err := sess.Call("ping", nil)
	if err != nil || out != "ok" {
		t.Fatalf("per-call fallback: %v %v", out, err)
	}
}

// TestStreamSessionSurvivesLargeFrames pushes a payload well past the
// bufio sizes through a session in both directions.
func TestStreamSessionSurvivesLargeFrames(t *testing.T) {
	f := newStreamFabric(t, httptransport.Options{Codec: "bin", Compress: "streamed"})
	f.Register("node", func(method string, payload any) (any, error) { return payload, nil })
	sess, err := f.OpenSession("caller", "node")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	big := make([]byte, 0, 1<<20)
	for i := 0; i < 1<<18; i++ {
		big = append(big, "wxyz"[i%4])
	}
	out, err := sess.Call("echo", string(big))
	if err != nil {
		t.Fatal(err)
	}
	if out.(string) != string(big) {
		t.Fatal("large frame corrupted in flight")
	}
}

// TestStreamCloseDoesNotLeakGoroutines opens and closes many sessions and
// fabrics and checks the goroutine count settles back to its baseline.
func TestStreamCloseDoesNotLeakGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		f, err := httptransport.New(httptransport.Options{Listen: "127.0.0.1:0", Stream: true})
		if err != nil {
			t.Fatal(err)
		}
		f.Register("node", func(method string, payload any) (any, error) { return true, nil })
		for j := 0; j < 5; j++ {
			sess, err := f.OpenSession("caller", "node")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Call("ping", nil); err != nil {
				t.Fatal(err)
			}
			sess.Close()
		}
		// Exercise the cached-session call path too.
		if _, err := f.Call("caller", "node", "ping", nil); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines: %d at start, %d after close\n%s",
		base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestAckElideEndToEnd mirrors the TCP fabric's elision test on the HTTP
// streaming session: no-ack chunk sends are all dispatched, only the final
// acked call crosses with a reply, and the shared counters record both the
// elided acks and the coalesced flush.
func TestAckElideEndToEnd(t *testing.T) {
	f := newStreamFabric(t, httptransport.Options{Codec: "bin", AckElide: true})
	// The handler runs on the serving goroutine; the only ordering toward
	// the test's final read is socket I/O, which the race detector cannot
	// see, so the record needs its own lock.
	var mu sync.Mutex
	var methods []string
	f.Register("agg", func(method string, payload any) (any, error) {
		mu.Lock()
		methods = append(methods, method)
		mu.Unlock()
		return server.UploadResponse{OK: true}, nil
	})
	sess, err := f.OpenSession("client-1", "agg")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	es, ok := sess.(transport.ElidingSession)
	if !ok || !es.ElidesAcks() {
		t.Fatalf("loopback session does not elide (ok=%v)", ok)
	}
	for i := 0; i < 5; i++ {
		if err := es.SendNoAck("chunk", server.FailRequest{TaskID: "t", SessionID: uint64(i)}); err != nil {
			t.Fatalf("no-ack send %d: %v", i, err)
		}
	}
	out, err := es.Call("done", server.FailRequest{TaskID: "t", SessionID: 99})
	if err != nil {
		t.Fatalf("final acked call: %v", err)
	}
	if ur := out.(server.UploadResponse); !ur.OK {
		t.Fatalf("final response = %+v", ur)
	}
	mu.Lock()
	if len(methods) != 6 || methods[0] != "chunk" || methods[5] != "done" {
		t.Fatalf("handler saw %v", methods)
	}
	mu.Unlock()
	st := f.Stats()
	if st.AcksElided < 5 {
		t.Fatalf("AcksElided = %d, want >= 5", st.AcksElided)
	}
	if st.FramesCoalesced == 0 {
		t.Fatal("queued no-ack frames never coalesced into a batched write")
	}
}

// TestAckElideHeldFailureSurfacesOnNextCall: the held-response protocol on
// the HTTP stream — first non-suppressible response to an elided frame is
// held, later elided frames drain without dispatch, and the next acked
// call is answered with the held response without being invoked.
func TestAckElideHeldFailureSurfacesOnNextCall(t *testing.T) {
	f := newStreamFabric(t, httptransport.Options{Codec: "bin", AckElide: true})
	var mu sync.Mutex
	var methods []string
	f.Register("agg", func(method string, payload any) (any, error) {
		mu.Lock()
		methods = append(methods, method)
		mu.Unlock()
		if method == "bad" {
			return server.UploadResponse{OK: false, Reason: "nope"}, nil
		}
		return server.UploadResponse{OK: true}, nil
	})
	sess, err := f.OpenSession("client-1", "agg")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	es := sess.(transport.ElidingSession)
	for _, m := range []string{"ok", "bad", "after"} {
		if err := es.SendNoAck(m, server.FailRequest{TaskID: "t"}); err != nil {
			t.Fatalf("no-ack %s: %v", m, err)
		}
	}
	out, err := es.Call("final", server.FailRequest{TaskID: "t"})
	if err != nil {
		t.Fatalf("acked call after held failure: %v", err)
	}
	ur := out.(server.UploadResponse)
	if ur.OK || ur.Reason != "nope" {
		t.Fatalf("held response = %+v, want the bad chunk's failure", ur)
	}
	mu.Lock()
	if len(methods) != 2 || methods[0] != "ok" || methods[1] != "bad" {
		t.Fatalf("handler saw %v", methods)
	}
	mu.Unlock()
}

// TestAckElideDegradesForV1Peers: toward a peer whose capabilities were
// never fetched (a /v1 peer), OpenSession falls back to per-call POSTs —
// the session must not offer elision, and SendNoAck (if reached through
// the interface) degrades to an acked per-call RPC rather than failing.
func TestAckElideDegradesForV1Peers(t *testing.T) {
	srv := newStreamFabric(t, httptransport.Options{})
	srv.Register("node", func(method string, payload any) (any, error) {
		return server.UploadResponse{OK: true}, nil
	})
	caller := newStreamFabric(t, httptransport.Options{AckElide: true})
	caller.AddRoute("node", srv.BaseURL())

	sess, err := caller.OpenSession("client-1", "node")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if es, ok := sess.(transport.ElidingSession); ok && es.ElidesAcks() {
		t.Fatal("session elides acks toward a peer that never negotiated the capability")
	}
	out, err := sess.Call("chunk", server.FailRequest{TaskID: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if ur := out.(server.UploadResponse); !ur.OK {
		t.Fatalf("per-chunk acked call = %+v", ur)
	}
	if st := caller.Stats(); st.AcksElided != 0 {
		t.Fatalf("AcksElided = %d toward a non-negotiating peer", st.AcksElided)
	}
}
