package transport

import (
	"errors"
	"fmt"
)

// Session is one streaming session on a Fabric: a pinned (from, to) pair
// exchanging pipelined calls over a single underlying connection, instead
// of one connection (or POST) per call. This is the paper's long-lived
// client<->aggregator session (Section 6.1's virtual session) surfaced at
// the transport: a client opens one Session per participation and runs
// check-in -> join -> chunked upload -> report over it. Sessions are NOT
// safe for concurrent use — one call at a time, like the protocol they
// carry.
type Session interface {
	// Call sends one request over the session and returns the response,
	// with the same error semantics as Fabric.Call (ErrCrashed,
	// ErrDropped, ... are transient; a broken underlying connection
	// surfaces as ErrCrashed).
	Call(method string, payload any) (any, error)
	// Close releases the underlying connection. It is idempotent; calls
	// after Close fail.
	Close() error
}

// StreamFabric is the optional streaming surface a Fabric may offer: one
// connection per session with pipelined calls (the wire.Capabilities
// "stream" capability). Backends that cannot stream toward a given peer (a
// /v1/ peer that never advertised the capability) degrade by returning a
// per-call Session, so callers need no fallback logic of their own.
type StreamFabric interface {
	Fabric
	// OpenSession opens a streaming session from from to to. It degrades
	// to a per-call session when the peer did not negotiate streaming; it
	// fails only when the peer is unknown or the connection cannot be
	// established.
	OpenSession(from, to string) (Session, error)
}

// ElidingSession is the optional ack-elision surface of a Session: calls
// whose responses the caller does not need (non-final upload chunks) can be
// sent without waiting for an acknowledgement, halving the stream's round
// trips. A session offers it only when the peer negotiated the ack-elide
// stream capability (wire.Capabilities.AckElide); everywhere else callers
// keep using Call and the per-frame rhythm is unchanged.
type ElidingSession interface {
	Session
	// ElidesAcks reports whether this session negotiated ack elision with
	// its peer. When false, SendNoAck must not be used.
	ElidesAcks() bool
	// SendNoAck sends one call without waiting for its response. The frame
	// may be buffered and coalesced with later frames; the next Call
	// flushes everything queued ahead of itself. If any elided call failed
	// on the server, the failure surfaces as that next Call's response.
	// An error return means the session broke and nothing further can be
	// sent on it (queued frames may or may not have reached the peer).
	SendNoAck(method string, payload any) error
}

// AckElidable lets a response payload opt its acknowledgement out of the
// wire: when a streamed call was sent no-ack and the handler's response
// payload reports AckElidable() == true (with no error attached), the
// server sends nothing back. Responses that do not implement the interface
// — and any error — always travel, carried on the session's next
// acknowledged frame.
type AckElidable interface {
	AckElidable() bool
}

// OpenSession opens a streaming session on any Fabric: backends that
// implement StreamFabric stream (or degrade per their negotiation);
// everything else — the in-memory Network included — gets a per-call
// wrapper with identical semantics, so session-oriented callers (the
// client runtime) run unchanged on every backend.
func OpenSession(f Fabric, from, to string) (Session, error) {
	if sf, ok := f.(StreamFabric); ok {
		return sf.OpenSession(from, to)
	}
	return &callSession{f: f, from: from, to: to}, nil
}

// callSession is the per-call degradation of a Session: every Call is an
// independent Fabric.Call.
type callSession struct {
	f        Fabric
	from, to string
	closed   bool
}

// Call implements Session.
func (s *callSession) Call(method string, payload any) (any, error) {
	if s.closed {
		return nil, fmt.Errorf("%w: session closed", ErrCrashed)
	}
	return s.f.Call(s.from, s.to, method, payload)
}

// Close implements Session.
func (s *callSession) Close() error {
	s.closed = true
	return nil
}

// Stats counts a networked fabric's client-side traffic: outbound calls,
// request bytes written and response bytes read. The loadtest reports them
// as "bytes moved". Shared by the HTTP and raw-TCP backends so tooling can
// meter either through one interface.
type Stats struct {
	// Calls counts outbound RPCs (streamed or per-POST).
	Calls uint64
	// BytesSent counts request payload bytes written.
	BytesSent uint64
	// BytesReceived counts response payload bytes read.
	BytesReceived uint64
	// AcksElided counts streamed calls whose acknowledgement never crossed
	// the wire: no-ack frames sent client-side plus responses suppressed
	// server-side (a loopback fabric counts both halves).
	AcksElided uint64
	// FramesCoalesced counts stream frames written as part of a
	// multi-frame batch (one writev instead of one syscall per frame).
	FramesCoalesced uint64
}

// Error kinds carried in wire.Response.Kind so transport-level failure
// semantics survive serialization — the fault-parity contract between the
// in-memory backend and every networked one (HTTP and raw TCP map through
// the same table).
const (
	// KindCrashed marks ErrCrashed on the wire.
	KindCrashed = "crashed"
	// KindDropped marks ErrDropped on the wire.
	KindDropped = "dropped"
	// KindPartitioned marks ErrPartitioned on the wire.
	KindPartitioned = "partitioned"
	// KindUnknownNode marks ErrUnknownNode on the wire.
	KindUnknownNode = "unknown-node"
)

// KindToError rebuilds the sentinel transport errors from a wire response
// kind so errors.Is works identically on every fabric (fault parity).
func KindToError(kind, msg string) error {
	switch kind {
	case KindCrashed:
		return fmt.Errorf("%w: %s", ErrCrashed, msg)
	case KindDropped:
		return fmt.Errorf("%w: %s", ErrDropped, msg)
	case KindPartitioned:
		return fmt.Errorf("%w: %s", ErrPartitioned, msg)
	case KindUnknownNode:
		return fmt.Errorf("%w: %s", ErrUnknownNode, msg)
	default:
		return fmt.Errorf("transport: %s: %s", kind, msg)
	}
}

// ErrorToKind classifies a handler error for the wire; the inverse of
// KindToError. Application errors ship with an empty kind.
func ErrorToKind(err error) string {
	switch {
	case errors.Is(err, ErrCrashed):
		return KindCrashed
	case errors.Is(err, ErrDropped):
		return KindDropped
	case errors.Is(err, ErrPartitioned):
		return KindPartitioned
	case errors.Is(err, ErrUnknownNode):
		return KindUnknownNode
	default:
		return ""
	}
}
