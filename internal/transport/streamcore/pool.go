package streamcore

import "sync"

// Pool is the idle-session cache both networked fabrics used to duplicate:
// healthy sessions park per (address, node) key for reuse by Fabric.Call,
// every live session is tracked so fabric Close can tear them all down,
// and the idle cap bounds what survives a burst.
type Pool struct {
	mu      sync.Mutex
	closed  bool
	maxIdle int
	idle    map[string][]*Session
	all     map[*Session]struct{}
}

// NewPool creates a pool keeping at most maxIdle idle sessions per key.
func NewPool(maxIdle int) *Pool {
	return &Pool{
		maxIdle: maxIdle,
		idle:    make(map[string][]*Session),
		all:     make(map[*Session]struct{}),
	}
}

// Take pops a cached idle session for key, or returns nil when the caller
// should open a fresh one.
func (p *Pool) Take(key string) *Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	if idle := p.idle[key]; len(idle) > 0 {
		s := idle[len(idle)-1]
		p.idle[key] = idle[:len(idle)-1]
		return s
	}
	return nil
}

// Track registers a freshly opened session for Close bookkeeping. It
// reports false when the pool already closed — the session lost the race
// against fabric Close and the caller must tear it down (a session
// registered now would never be torn down; Close already snapshotted).
func (p *Pool) Track(s *Session) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.all[s] = struct{}{}
	return true
}

// Release returns a healthy session to the idle cache; broken, closed, or
// over-cap sessions are discarded instead.
func (p *Pool) Release(key string, s *Session) {
	if s.Broken() || s.Closed() {
		p.Discard(s)
		return
	}
	p.mu.Lock()
	if !p.closed && len(p.idle[key]) < p.maxIdle {
		p.idle[key] = append(p.idle[key], s)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.Discard(s)
}

// Discard forgets a session and tears it down for good.
func (p *Pool) Discard(s *Session) {
	p.mu.Lock()
	delete(p.all, s)
	p.mu.Unlock()
	s.Teardown()
}

// Close marks the pool closed and tears down every tracked session. It is
// idempotent; sessions opened after Close fail Track and never register.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	sessions := make([]*Session, 0, len(p.all))
	for s := range p.all {
		sessions = append(sessions, s)
	}
	p.all = make(map[*Session]struct{})
	p.idle = make(map[string][]*Session)
	p.mu.Unlock()
	for _, s := range sessions {
		s.Teardown()
	}
}
