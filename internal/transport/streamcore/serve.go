package streamcore

import (
	"net"

	"repro/internal/compress"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// ServeConfig parameterizes the server half of the engine for the fabric
// that owns the connection.
type ServeConfig struct {
	// DefaultCodec answers frames whose codec could not be sniffed.
	DefaultCodec wire.Codec
	// MaxFrame bounds one request payload, raw or inflated.
	MaxFrame int
	// Prefix is the owning fabric's error prefix.
	Prefix string
	// Counters receives the server-side accounting (acks elided).
	Counters *Counters
	// Invoke runs one decoded request through the fabric's fault-check
	// dispatch — the same path per-call RPC takes, so fault parity holds
	// frame by frame.
	Invoke func(req *wire.Request) *wire.Response
}

// Serve runs one inbound streaming session: pipelined request frames
// answered in order by response frames, each decoded by its own sniffed
// codec, compressed responses mirroring the request's deflate choice, and
// buffer leases released in the per-call order (response frame fully
// encoded, then response leases, then request leases).
//
// Frames carrying wire.StreamFlagNoAck are the ack-elision path: a
// successful response whose payload opts in (transport.AckElidable) is
// suppressed entirely. The first non-suppressible response to a no-ack
// frame is encoded immediately and *held*; subsequent no-ack frames are
// drained without decode or dispatch (their sender's protocol state is
// already failed), and the held frame answers the session's next
// acknowledged call in place of invoking it — one response per
// acknowledged frame, always, so the two ends can never disagree about
// framing.
//
// Serve returns when the peer closes its end (the session's natural close
// signal) or the connection breaks; the caller owns conn cleanup.
func Serve(conn Conn, cfg ServeConfig) {
	var out []byte
	var held []byte // encoded response to the first failed no-ack call
	for {
		flags, payload, err := conn.ReadFrame(cfg.MaxFrame)
		if err != nil {
			return // io.EOF: clean close; anything else: dead peer
		}
		noAck := flags&wire.StreamFlagNoAck != 0
		if held != nil {
			if noAck {
				continue // session already failing: drain elided frames
			}
			if _, err := conn.WriteFrames(net.Buffers{held}); err != nil {
				return
			}
			held = nil
			continue
		}
		if flags&wire.StreamFlagDeflate != 0 {
			if payload, err = compress.InflateBytes(payload, int64(cfg.MaxFrame)); err != nil {
				return
			}
		}
		codec, ok := wire.CodecForFrame(payload)
		if !ok {
			codec = cfg.DefaultCodec
		}
		req, err := codec.DecodeRequest(payload)
		if err != nil {
			// A frame that does not decode means the stream framing itself
			// is unreliable; kill the session rather than guess at framing.
			return
		}
		resp := cfg.Invoke(req)
		if noAck && suppressible(resp) {
			releaseLeases(resp, req)
			cfg.Counters.AcksElided.Add(1)
			continue
		}
		out, err = AppendResponseFrame(out[:0], codec, resp, req, flags, cfg.Prefix)
		if err != nil {
			return
		}
		if noAck {
			held = append([]byte(nil), out...)
			continue
		}
		if _, err := conn.WriteFrames(net.Buffers{out}); err != nil {
			return
		}
	}
}

// suppressible reports whether a response to a no-ack frame may be elided:
// nothing failed and the payload explicitly opted its acknowledgement out
// of the wire.
func suppressible(resp *wire.Response) bool {
	if resp.Kind != "" || resp.Err != "" {
		return false
	}
	el, ok := resp.Payload.(transport.AckElidable)
	return ok && el.AckElidable()
}

// releaseLeases returns pooled buffers in the per-call order for a
// response that never gets encoded.
func releaseLeases(resp *wire.Response, req *wire.Request) {
	if lease, ok := resp.Payload.(wire.ResponseBufferLease); ok {
		lease.ReleaseResponseBuffers()
	}
	if lease, ok := req.Payload.(wire.BufferLease); ok {
		lease.ReleaseBinaryBuffers()
	}
}

// AppendResponseFrame encodes one response as a complete stream frame into
// dst: codec body via the append fast path when available, leases released
// once the body is encoded, the request's deflate choice mirrored back
// (the stream-era Accept-Encoding).
func AppendResponseFrame(dst []byte, codec wire.Codec, resp *wire.Response, req *wire.Request, reqFlags byte, prefix string) ([]byte, error) {
	var body []byte
	var err error
	framePooled := false
	if app, ok := codec.(wire.Appender); ok {
		body, err = app.AppendResponse(GetFrame(), resp)
		framePooled = err == nil
	} else {
		body, err = codec.EncodeResponse(resp)
	}
	// Leases follow the same order as the per-POST path: the response
	// frame is fully encoded, then pooled response vectors (a download's
	// model snapshot) and the request's leased decode vectors go back to
	// their pools.
	releaseLeases(resp, req)
	if err != nil {
		body, err = codec.EncodeResponse(&wire.Response{Err: prefix + ": encoding response: " + err.Error()})
		if err != nil {
			return dst, err
		}
	}
	respFlags := byte(0)
	if reqFlags&wire.StreamFlagDeflate != 0 && len(body) >= DeflateMin {
		if packed, derr := compress.DeflateBytes(body); derr == nil && len(packed) < len(body) {
			if framePooled {
				PutFrame(body)
				framePooled = false
			}
			body, respFlags = packed, wire.StreamFlagDeflate
		}
	}
	dst = wire.AppendStreamFrame(dst, respFlags, body)
	if framePooled {
		PutFrame(body)
	}
	return dst, nil
}
