package streamcore

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compress"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// Config parameterizes a client Session for the fabric that owns it.
type Config struct {
	// Codec is the negotiated request encoder (responses are decoded with
	// it too — the server answers in kind).
	Codec wire.Codec
	// Deflate enables the per-frame deflate stage for large request
	// frames (the peer negotiated the /v2 compression capability).
	Deflate bool
	// Node is the callee every frame on this session addresses, used in
	// error text.
	Node string
	// Prefix is the owning fabric's error prefix ("httptransport",
	// "tcptransport").
	Prefix string
	// CallTimeout bounds one call end to end via Conn.SetDeadline; zero
	// disables the per-call deadline.
	CallTimeout time.Duration
	// MaxFrame bounds one response payload, raw or inflated.
	MaxFrame int
	// Counters receives the session's traffic accounting (the owning
	// fabric's cumulative counters).
	Counters *Counters
}

// Session is one live client-side streaming session pinned to a target
// node: pipelined calls serialized by an internal mutex, with optional
// no-ack sends that queue and coalesce into the next flush. The wire
// frame carries From, so any caller may use a pooled Session.
type Session struct {
	conn Conn
	cfg  Config

	// Addr is the peer address this session is pinned to — fabric
	// bookkeeping for pool keys, never interpreted by the engine.
	Addr string

	broken atomic.Bool
	closed atomic.Bool

	mu      sync.Mutex
	req     wire.Request // reused header; payload set per call
	encBuf  []byte       // codec frame scratch
	outBuf  []byte       // acked-call stream frame scratch
	pending [][]byte     // queued no-ack frames (pooled buffers)
	pendBts int          // queued bytes, drives the flush threshold
	writev  [][]byte     // net.Buffers scratch (WriteTo consumes a copy)
}

// NewSession wraps an opened Conn. The caller has already performed the
// backend's open handshake (HTTP response headers, TCP hello).
func NewSession(conn Conn, cfg Config) *Session {
	return &Session{conn: conn, cfg: cfg}
}

// Broken reports whether a connection-level failure was observed.
func (s *Session) Broken() bool { return s.broken.Load() }

// Closed reports whether the session was torn down.
func (s *Session) Closed() bool { return s.closed.Load() }

// Node returns the callee this session is pinned to.
func (s *Session) Node() string { return s.cfg.Node }

// Do sends one call over the session and reads its response. Fault checks
// are the caller's job (the fabrics run checkCall first). Any no-ack
// frames queued by SendNoAck flush ahead of the call in the same coalesced
// write, and the single response read may surface an earlier elided call's
// failure — which is exactly the contract: the next acknowledged call owns
// any queued failure. A connection-level failure marks the session broken;
// wrote reports whether any request bytes may have reached the peer (the
// at-most-once guard: callers may transparently retry a failed call on
// another connection only when wrote is false).
func (s *Session) Do(from, method string, payload any) (out any, err error, wrote bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() || s.broken.Load() {
		return nil, fmt.Errorf("%w: %s: stream closed", transport.ErrCrashed, s.cfg.Node), false
	}
	frame, err := s.encodeFrame(s.outBuf[:0], from, method, payload, 0)
	if err != nil {
		// An unregistered payload is a caller bug, not a broken session.
		return nil, fmt.Errorf("%s: encoding %s call to %s: %w", s.cfg.Prefix, method, s.cfg.Node, err), false
	}
	if cap(frame) > cap(s.outBuf) {
		s.outBuf = frame
	}
	s.cfg.Counters.Calls.Add(1)
	s.cfg.Counters.BytesSent.Add(uint64(len(frame)))

	n, werr := s.writeLocked(frame)
	if werr != nil {
		return nil, fmt.Errorf("%w: %s unreachable: %v", transport.ErrCrashed, s.cfg.Node, werr), n > 0
	}
	wrote = true
	rflags, raw, err := s.conn.ReadFrame(s.cfg.MaxFrame)
	if err != nil {
		s.broken.Store(true)
		return nil, fmt.Errorf("%w: %s unreachable: %v", transport.ErrCrashed, s.cfg.Node, err), true
	}
	s.clearDeadline()
	s.cfg.Counters.BytesReceived.Add(uint64(len(raw)))
	if rflags&wire.StreamFlagDeflate != 0 {
		if raw, err = compress.InflateBytes(raw, int64(s.cfg.MaxFrame)); err != nil {
			s.broken.Store(true)
			return nil, fmt.Errorf("%s: inflating stream response from %s: %w", s.cfg.Prefix, s.cfg.Node, err), true
		}
	}
	resp, err := s.cfg.Codec.DecodeResponse(raw)
	if err != nil {
		s.broken.Store(true)
		return nil, fmt.Errorf("%s: decoding stream response from %s: %w", s.cfg.Prefix, s.cfg.Node, err), true
	}
	if resp.Kind != "" {
		return nil, transport.KindToError(resp.Kind, resp.Err), true
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err), true
	}
	return resp.Payload, nil, true
}

// SendNoAck queues one call to ride the stream without an acknowledgement
// (wire.StreamFlagNoAck). The frame coalesces with later sends and flushes
// either at the byte threshold or ahead of the next Do. An error means the
// session broke and nothing further can be sent on it; whether the queued
// frames reached the peer is unknown, exactly like a failed acked call
// after wrote.
func (s *Session) SendNoAck(from, method string, payload any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() || s.broken.Load() {
		return fmt.Errorf("%w: %s: stream closed", transport.ErrCrashed, s.cfg.Node)
	}
	frame, err := s.encodeFrame(GetFrame(), from, method, payload, wire.StreamFlagNoAck)
	if err != nil {
		PutFrame(frame)
		return fmt.Errorf("%s: encoding %s call to %s: %w", s.cfg.Prefix, method, s.cfg.Node, err)
	}
	s.pending = append(s.pending, frame)
	s.pendBts += len(frame)
	s.cfg.Counters.Calls.Add(1)
	s.cfg.Counters.BytesSent.Add(uint64(len(frame)))
	s.cfg.Counters.AcksElided.Add(1)
	if s.pendBts < coalesceFlushBytes {
		return nil
	}
	if _, err := s.writeLocked(nil); err != nil {
		return fmt.Errorf("%w: %s unreachable: %v", transport.ErrCrashed, s.cfg.Node, err)
	}
	s.clearDeadline()
	return nil
}

// Flush forces any queued no-ack frames onto the wire without waiting for
// the byte threshold or the next acknowledged call — for callers that know
// the peer should see the queued work now (end of a chunk train that will
// pause before its final acked call).
func (s *Session) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return nil
	}
	if s.closed.Load() || s.broken.Load() {
		return fmt.Errorf("%w: %s: stream closed", transport.ErrCrashed, s.cfg.Node)
	}
	if _, err := s.writeLocked(nil); err != nil {
		return fmt.Errorf("%w: %s unreachable: %v", transport.ErrCrashed, s.cfg.Node, err)
	}
	s.clearDeadline()
	return nil
}

// encodeFrame encodes one request into dst as a complete stream frame:
// codec body (via the append fast path when available), optional deflate,
// length-prefixed framing with the given extra flags.
func (s *Session) encodeFrame(dst []byte, from, method string, payload any, extraFlags byte) ([]byte, error) {
	s.req.From, s.req.Method, s.req.Payload = from, method, payload
	var body []byte
	var err error
	if app, ok := s.cfg.Codec.(wire.Appender); ok {
		body, err = app.AppendRequest(s.encBuf[:0], &s.req)
	} else {
		body, err = s.cfg.Codec.EncodeRequest(&s.req)
	}
	s.req.Payload = nil
	if err != nil {
		return dst, err
	}
	if cap(body) > cap(s.encBuf) {
		s.encBuf = body // keep the grown scratch for the next frame
	}
	flags := extraFlags
	if s.cfg.Deflate && len(body) >= DeflateMin {
		if packed, derr := compress.DeflateBytes(body); derr == nil && len(packed) < len(body) {
			body, flags = packed, flags|wire.StreamFlagDeflate
		}
	}
	return wire.AppendStreamFrame(dst, flags, body), nil
}

// writeLocked flushes the queued no-ack frames plus the optional final
// frame as one coalesced write under the per-call deadline, returning the
// pooled pending buffers either way. A write failure marks the session
// broken. Caller holds s.mu.
func (s *Session) writeLocked(final []byte) (int64, error) {
	bufs := s.writev[:0]
	bufs = append(bufs, s.pending...)
	if final != nil {
		bufs = append(bufs, final)
	}
	s.writev = bufs
	if len(bufs) > 1 {
		s.cfg.Counters.FramesCoalesced.Add(uint64(len(bufs)))
	}
	if s.cfg.CallTimeout > 0 {
		_ = s.conn.SetDeadline(time.Now().Add(s.cfg.CallTimeout))
	}
	n, err := s.conn.WriteFrames(net.Buffers(bufs))
	for _, f := range s.pending {
		PutFrame(f)
	}
	s.pending, s.pendBts = s.pending[:0], 0
	if err != nil {
		s.broken.Store(true)
	}
	return n, err
}

// clearDeadline disarms the per-call deadline after a completed exchange;
// backends that emulate deadlines with an abort timer must not fire while
// the session idles in a pool.
func (s *Session) clearDeadline() {
	if s.cfg.CallTimeout > 0 {
		_ = s.conn.SetDeadline(time.Time{})
	}
}

// Teardown closes the session's conn; idempotent, and safe to call
// concurrently with an in-flight Do (the conn close is what unblocks it).
// Queued no-ack frames are discarded — an abandoned session's elided
// chunks are never delivered, exactly like a vanished per-call client.
func (s *Session) Teardown() {
	if s.closed.Swap(true) {
		return
	}
	// Recycle queued frames when no call is in flight; when one is (a
	// racing fabric Close), leave them to the GC rather than block the
	// close on the call's deadline.
	if s.mu.TryLock() {
		for _, f := range s.pending {
			PutFrame(f)
		}
		s.pending, s.pendBts = nil, 0
		s.mu.Unlock()
	}
	_ = s.conn.Close()
}
