// Package streamcore is the shared streaming-session engine behind the
// networked fabrics. PR 5 gave the HTTP and raw-TCP backends each their own
// copy of the same machinery — an idle-session pool, a pipelined
// frame-serving loop, a per-call watchdog, and pooled encode buffers — and
// the copies drifted apart in exactly the places that matter for
// performance (the HTTP side tore down whole sessions on one slow call; the
// TCP side issued one write syscall per frame). This package collapses both
// onto one engine over a small Conn interface (read-frame / write-frames /
// set-deadline / close) and attacks per-session overhead once, for every
// backend:
//
//   - Ack elision (wire.StreamFlagNoAck, negotiated as the
//     wire.Capabilities.AckElide stream capability): calls whose responses
//     the caller does not need ride the stream unanswered. The server
//     suppresses the acknowledgement only when the handler's response opts
//     in (transport.AckElidable) and nothing failed; the first failure is
//     held and delivered on the session's next acknowledged frame, so
//     request/response framing never desynchronizes and errors are never
//     dropped. Peers that did not negotiate the capability keep the
//     per-frame request/response rhythm bit-identically.
//
//   - Frame coalescing: queued no-ack frames and the next acknowledged
//     frame flush as one net.Buffers write — a writev on TCP — instead of
//     one syscall per frame.
//
//   - Deadline-per-call timeouts: every call arms Conn.SetDeadline for the
//     fabric's CallTimeout and clears it on completion, replacing the HTTP
//     side's per-call time.AfterFunc watchdog (one timer allocation per
//     call) with the deadline machinery TCP already had.
//
// Fault parity is preserved on both ends exactly as before: client-side
// fault checks stay in the fabrics (checkCall before every streamed call,
// elided or not), and the server loop routes every decoded frame through
// the same invoke dispatch as per-call RPC.
package streamcore

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// DeflateMin is the frame size below which the per-frame deflate stage is
// skipped (fixed DEFLATE framing would outweigh the savings) — the same
// threshold as the per-POST /v2/ deflate stage.
const DeflateMin = 256

// coalesceFlushBytes is the queued no-ack byte threshold that forces a
// flush: enough to amortize a writev over several chunk frames, small
// enough that a pipelined 4096-element chunk train flushes every few
// frames instead of buffering a whole model in client memory.
const coalesceFlushBytes = 64 << 10

// Conn is one framed, ordered, full-duplex byte stream — the only thing a
// backend must supply. The TCP fabric wraps a net.Conn (NetConn); the HTTP
// fabric wraps its long-lived POST pipe on the client side and the
// request/response bodies on the server side.
type Conn interface {
	// ReadFrame reads the next stream frame, returning its flags and
	// payload. The payload aliases the Conn's internal scratch and is
	// valid only until the next ReadFrame. max bounds the declared
	// payload length. io.EOF before the first byte is a clean end of
	// stream.
	ReadFrame(max int) (flags byte, payload []byte, err error)
	// WriteFrames writes the buffers as one coalesced write (a writev
	// where the backend supports it), returning the bytes written.
	WriteFrames(bufs net.Buffers) (int64, error)
	// SetDeadline bounds all pending and future I/O; the zero time clears
	// it. Backends without native deadlines emulate with a reusable timer
	// that force-closes the conn.
	SetDeadline(t time.Time) error
	// Close releases the conn; idempotent.
	Close() error
}

// Counters are a fabric's cumulative traffic counters, updated by the
// engine on both the client and server halves. The fabric owns one set and
// snapshots it for transport.Stats.
type Counters struct {
	Calls           atomic.Uint64
	BytesSent       atomic.Uint64
	BytesReceived   atomic.Uint64
	AcksElided      atomic.Uint64
	FramesCoalesced atomic.Uint64
}

// Snapshot returns the counters as a transport.Stats value.
func (c *Counters) Snapshot() transport.Stats {
	return transport.Stats{
		Calls:           c.Calls.Load(),
		BytesSent:       c.BytesSent.Load(),
		BytesReceived:   c.BytesReceived.Load(),
		AcksElided:      c.AcksElided.Load(),
		FramesCoalesced: c.FramesCoalesced.Load(),
	}
}

// NetConn adapts a net.Conn to the Conn interface: buffered frame reads
// with a reusable scratch, writev via net.Buffers, native deadlines. Both
// halves of the TCP fabric use it (client sessions and accepted conns).
type NetConn struct {
	c       net.Conn
	br      *bufio.Reader
	scratch []byte
}

// NewNetConn wraps c with a 32 KiB read buffer.
func NewNetConn(c net.Conn) *NetConn {
	return &NetConn{c: c, br: bufio.NewReaderSize(c, 32<<10)}
}

// ReadFrame implements Conn.
func (n *NetConn) ReadFrame(max int) (byte, []byte, error) {
	flags, payload, scratch, err := wire.ReadStreamFrameFrom(n.br, n.scratch, max)
	n.scratch = scratch
	return flags, payload, err
}

// WriteFrames implements Conn; on a *net.TCPConn the whole batch goes out
// as one writev.
func (n *NetConn) WriteFrames(bufs net.Buffers) (int64, error) {
	return bufs.WriteTo(n.c)
}

// SetDeadline implements Conn.
func (n *NetConn) SetDeadline(t time.Time) error { return n.c.SetDeadline(t) }

// Close implements Conn.
func (n *NetConn) Close() error { return n.c.Close() }

// framePool recycles encode buffers for response frames and queued no-ack
// request frames — one shared pool where each fabric used to keep its own
// copy (wrap headers recycled so a release doesn't heap-allocate a slice
// header).
type frameWrap struct{ b []byte }

var (
	framePool  sync.Pool
	frameWraps sync.Pool
)

// GetFrame returns a pooled byte buffer with zero length.
func GetFrame() []byte {
	if w, _ := framePool.Get().(*frameWrap); w != nil {
		b := w.b[:0]
		w.b = nil
		frameWraps.Put(w)
		return b
	}
	return make([]byte, 0, 4096)
}

// PutFrame returns a buffer obtained from GetFrame (or grown from one).
func PutFrame(b []byte) {
	w, _ := frameWraps.Get().(*frameWrap)
	if w == nil {
		w = new(frameWrap)
	}
	w.b = b
	framePool.Put(w)
}
