// Package tcptransport is the raw-TCP transport.Fabric: the same
// Coordinator/Aggregator/Selector control plane that runs over the
// in-memory Network in tests and over net/http in deployments runs here on
// bare TCP connections carrying length-prefixed wire frames — no request
// routing, no header parsing, no per-call connection lifecycle. PR 4 left
// net/http traversal as the single-core bottleneck of the serving path
// (~1.4ms of ~1.6ms per session on the loopback loadtest); this backend
// removes that entire layer while reusing everything above it: the
// versioned wire codecs (wire.Binary preferred, gob/json always decoded),
// the pooled frame buffers, the stream framing of wire.AppendStreamFrame,
// and the capability negotiation of versioning rule 4.
//
// Protocol: a connection opens with one stream frame whose payload is a
// wire.StreamHello naming the node every subsequent request addresses (the
// HTTP transport carries this in the URL path). After the hello, the
// connection is a streaming session: pipelined request frames answered in
// order by response frames, each payload a complete self-describing codec
// frame (sniffed via wire.CodecForFrame, answered in kind), optionally
// DEFLATE-compressed per frame (wire.StreamFlagDeflate). One connection
// per session is the native mode — Fabric.Call multiplexes over a cached
// session pool, and OpenSession hands out dedicated connections.
//
// Discovery and advertisement mirror the HTTP fabric's /nodes and
// /advertise documents: the reserved node name "_fabric" serves the
// "_nodes" and "_advertise" methods, whose payloads are the same JSON
// discovery document carried as a string. Fault injection implements
// transport.FaultInjector with the in-memory backend's semantics, checked
// client-side before every streamed call and server-side on every frame,
// so the server conformance suite runs its Appendix E.4 failure drills
// unchanged against this backend. A dead peer surfaces as a connection
// error mapped onto transport.ErrCrashed, exactly like the HTTP fabric.
package tcptransport

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compress"
	"repro/internal/transport"
	"repro/internal/transport/streamcore"
	"repro/internal/transport/wire"
)

// Compile-time interface checks against the contracts in internal/transport.
var (
	_ transport.Fabric         = (*Fabric)(nil)
	_ transport.FaultInjector  = (*Fabric)(nil)
	_ transport.StreamFabric   = (*Fabric)(nil)
	_ transport.ElidingSession = (*boundSession)(nil)
)

// Scheme prefixes a TCP fabric's advertised base URL ("tcp://host:port"),
// so tooling can pick the backend from an address the way it picks HTTP
// from "http://".
const Scheme = "tcp://"

// fabricNode is the reserved node name serving the fabric's own discovery
// and advertisement methods; real node names must not collide with it.
const fabricNode = "_fabric"

// maxFrameBytes bounds one frame payload in either direction, raw or
// inflated (64 MiB ~ a 16M-parameter checkpoint frame), mirroring the HTTP
// fabric's RPC body bound so a hostile length prefix or deflate bomb
// cannot force a huge allocation.
const maxFrameBytes = 64 << 20

// maxIdleSessionsPerPeer caps the cached Call sessions kept per
// (address, node) pair; extras are closed on release.
const maxIdleSessionsPerPeer = 16

// Options configures a Fabric.
type Options struct {
	// Listen is the TCP listen address (e.g. "127.0.0.1:7071"; port 0
	// picks a free port).
	Listen string
	// Codec selects the preferred wire codec: "gob" (default), "json", or
	// "bin". As on the HTTP fabric, bin is negotiated: it is used only
	// toward peers whose discovery document advertised it (every tcp build
	// does), with gob as the universal fallback. Serving decodes all three
	// by frame sniffing and answers in kind.
	Codec string
	// Compress names the compress.Codec this fabric prefers on the wire
	// ("" or "none" disables). When the codec includes a streaming stage
	// (Streams() true, e.g. "streamed" or "flate"), large frames toward
	// capability-advertising peers are DEFLATE-compressed per frame.
	Compress string
	// AdvertiseAddr is the address peers should dial, with or without the
	// tcp:// prefix. Defaults to the bound address, which is correct on
	// localhost; set it explicitly behind NAT.
	AdvertiseAddr string
	// Seed seeds the probabilistic-loss RNG (SetLoss); 0 is a valid seed.
	Seed int64
	// CallTimeout bounds one call end to end (default 30s), enforced with
	// connection deadlines so a blackholed peer fails fast.
	CallTimeout time.Duration
	// AckElide lets this fabric's streamed sessions send no-ack frames
	// toward peers that advertised the ack-elide capability
	// (wire.Capabilities.AckElide): non-final upload chunks ride the
	// stream unanswered and coalesce into writev batches. Off, every
	// streamed call keeps its per-frame acknowledgement. Serving no-ack
	// frames is unconditional — the knob only governs what this fabric
	// sends.
	AckElide bool
}

// Fabric is the raw-TCP transport.Fabric for one process. It is safe for
// concurrent use.
type Fabric struct {
	codec        wire.Codec
	binPreferred bool
	fallback     wire.Codec
	baseAddr     string // host:port peers dial
	ln           net.Listener
	compressName string
	deflateBody  bool
	callTimeout  time.Duration
	ackElide     bool

	mu       sync.RWMutex
	local    map[string]transport.Handler
	routes   map[string]string            // node name -> peer host:port
	peerCaps map[string]wire.Capabilities // peer host:port -> capabilities

	// Faults is the injected-fault table shared with the HTTP backend,
	// promoted so Fabric implements transport.FaultInjector.
	transport.Faults

	// counters feed Stats; the shared engine updates them on both halves.
	counters streamcore.Counters

	// pool caches idle Call sessions per "addr|node" key and tracks every
	// live client session for Close; srvConns tracks the server side.
	pool *streamcore.Pool

	srvMu    sync.Mutex
	srvConns map[net.Conn]struct{}

	closed    atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New binds the listener and starts serving. The returned fabric is ready
// for Register/Call immediately; Close releases the port.
func New(opts Options) (*Fabric, error) {
	codecName := opts.Codec
	if codecName == "" {
		codecName = "gob"
	}
	codec, err := wire.ByName(codecName)
	if err != nil {
		return nil, err
	}
	compressName := opts.Compress
	if compressName == "none" {
		compressName = ""
	}
	deflateBody := false
	if compressName != "" {
		cc, err := compress.ByName(compressName)
		if err != nil {
			return nil, err
		}
		deflateBody = cc.Streams()
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen %s: %w", opts.Listen, err)
	}
	baseAddr := strings.TrimPrefix(opts.AdvertiseAddr, Scheme)
	if baseAddr == "" {
		baseAddr = ln.Addr().String()
	}
	callTimeout := opts.CallTimeout
	if callTimeout == 0 {
		callTimeout = 30 * time.Second
	}
	f := &Fabric{
		codec:        codec,
		binPreferred: codec.Name() == "bin",
		fallback:     wire.Gob{},
		baseAddr:     baseAddr,
		ln:           ln,
		compressName: compressName,
		deflateBody:  deflateBody,
		callTimeout:  callTimeout,
		ackElide:     opts.AckElide,
		local:        make(map[string]transport.Handler),
		routes:       make(map[string]string),
		peerCaps:     make(map[string]wire.Capabilities),
		pool:         streamcore.NewPool(maxIdleSessionsPerPeer),
		srvConns:     make(map[net.Conn]struct{}),
	}
	f.InitFaults(opts.Seed)
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// BaseURL returns the URL peers use to reach this fabric ("tcp://host:port").
func (f *Fabric) BaseURL() string { return Scheme + f.baseAddr }

// CodecName returns the active wire codec's name.
func (f *Fabric) CodecName() string { return f.codec.Name() }

// CompressName returns the preferred wire-compression codec name
// (Options.Compress; "" when compression is disabled).
func (f *Fabric) CompressName() string { return f.compressName }

// Stats returns a snapshot of the fabric's traffic counters.
func (f *Fabric) Stats() transport.Stats { return f.counters.Snapshot() }

// Close stops serving, closes every live session and connection, and waits
// for the serving goroutines. It is idempotent.
func (f *Fabric) Close() error {
	f.closeOnce.Do(func() {
		f.closed.Store(true)
		_ = f.ln.Close()
		f.pool.Close()
		f.srvMu.Lock()
		conns := make([]net.Conn, 0, len(f.srvConns))
		for c := range f.srvConns {
			conns = append(conns, c)
		}
		f.srvConns = make(map[net.Conn]struct{})
		f.srvMu.Unlock()
		for _, c := range conns {
			_ = c.Close()
		}
		f.wg.Wait()
	})
	return nil
}

// Register attaches a node served from this process. Re-registering a name
// replaces its handler and clears any crash marker (a restarted process).
func (f *Fabric) Register(name string, h transport.Handler) {
	if h == nil {
		panic("tcptransport: nil handler")
	}
	if name == fabricNode {
		panic("tcptransport: node name " + fabricNode + " is reserved")
	}
	f.mu.Lock()
	f.local[name] = h
	f.mu.Unlock()
	f.ClearCrash(name)
}

// Unregister detaches a locally served node.
func (f *Fabric) Unregister(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.local, name)
}

// AddRoute teaches this fabric that node lives at a peer fabric's address
// (with or without the tcp:// prefix).
func (f *Fabric) AddRoute(node, addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.routes[node] = strings.TrimPrefix(addr, Scheme)
}

// Nodes returns the locally served, non-crashed node names, sorted.
func (f *Fabric) Nodes() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.local))
	for name := range f.local {
		if !f.Crashed(name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Routes returns a copy of the remote routes this fabric knows (node name
// -> address, without the tcp:// prefix), from AddRoute, Advertise/
// Discover exchanges, and gossip. It is what selfDoc gossips onward.
func (f *Fabric) Routes() map[string]string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]string, len(f.routes))
	for node, addr := range f.routes {
		out[node] = addr
	}
	return out
}

// checkCall resolves where to reach to and applies the injected-fault
// checks in the in-memory Network's order (unknown node first, then the
// shared transport.Faults table); every streamed call runs through it, so
// fault parity holds frame by frame.
func (f *Fabric) checkCall(from, to, method string) (addr string, isLocal bool, err error) {
	f.mu.RLock()
	_, isLocal = f.local[to]
	route := f.routes[to]
	f.mu.RUnlock()

	addr = route
	if isLocal {
		addr = f.baseAddr
	}
	if addr == "" {
		return "", false, fmt.Errorf("%w: %s", transport.ErrUnknownNode, to)
	}
	if err := f.CheckCall(from, to, method); err != nil {
		return "", false, err
	}
	return addr, isLocal, nil
}

// peerCapabilities returns the capability document governing calls toward
// addr. Locally served nodes get this build's own document; unknown peers
// get the zero value — but unlike HTTP (where a /v1/ peer is a real
// possibility) every tcp peer necessarily runs this code, so the zero
// value only means "not yet discovered" and gob remains the safe default.
func (f *Fabric) peerCapabilities(addr string, isLocal bool) wire.Capabilities {
	if isLocal {
		return selfCapabilities()
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.peerCaps[addr]
}

func selfCapabilities() wire.Capabilities {
	return wire.Capabilities{
		API:      wire.APIv2,
		Compress: compress.Names(),
		Codecs:   wire.DecodableCodecs(),
		Stream:   true,
		Trace:    true,
		AckElide: true,
	}
}

// --- client side ---

// dialSession opens a connection to addr, sends the hello pinning node,
// and registers the resulting engine session for Close bookkeeping. The
// wire.Request frame carries From, so pooled sessions serve any caller.
func (f *Fabric) dialSession(addr, node string, caps wire.Capabilities) (*streamcore.Session, error) {
	enc := f.codec
	if f.binPreferred && !caps.SupportsBinary() {
		enc = f.fallback
	}
	conn, err := net.DialTimeout("tcp", addr, f.callTimeout)
	if err != nil {
		return nil, err
	}
	nc := streamcore.NewNetConn(conn)
	hello := wire.AppendStreamHello(nil, node)
	frame := wire.AppendStreamFrame(nil, 0, hello)
	if err := conn.SetWriteDeadline(time.Now().Add(f.callTimeout)); err == nil {
		defer conn.SetWriteDeadline(time.Time{})
	}
	if _, err := nc.WriteFrames(net.Buffers{frame}); err != nil {
		conn.Close()
		return nil, err
	}
	s := streamcore.NewSession(nc, streamcore.Config{
		Codec:       enc,
		Deflate:     f.deflateBody && caps.SupportsCompression(),
		Node:        node,
		Prefix:      "tcptransport",
		CallTimeout: f.callTimeout,
		MaxFrame:    maxFrameBytes,
		Counters:    &f.counters,
	})
	s.Addr = addr
	if !f.pool.Track(s) {
		conn.Close()
		return nil, errors.New("tcptransport: fabric closed")
	}
	return s, nil
}

func sessionKey(addr, node string) string { return addr + "|" + node }

// acquireSession pops a cached idle session for (addr, node) or dials a
// fresh one.
func (f *Fabric) acquireSession(addr, node string, caps wire.Capabilities) (s *streamcore.Session, fresh bool, err error) {
	if s = f.pool.Take(sessionKey(addr, node)); s != nil {
		return s, false, nil
	}
	s, err = f.dialSession(addr, node, caps)
	return s, true, err
}

// Call implements transport.Fabric: fault checks in the in-memory order,
// then one framed request over a cached streaming session to wherever the
// callee lives — through the loopback listener when it is this process, so
// every call exercises the full TCP wire path. A broken cached session
// (peer restarted) is discarded and the call retried once on a fresh
// connection.
func (f *Fabric) Call(from, to, method string, payload any) (any, error) {
	addr, isLocal, err := f.checkCall(from, to, method)
	if err != nil {
		return nil, err
	}
	caps := f.peerCapabilities(addr, isLocal)
	for {
		s, fresh, err := f.acquireSession(addr, to, caps)
		if err != nil {
			return nil, fmt.Errorf("%w: %s unreachable: %v", transport.ErrCrashed, to, err)
		}
		out, err, wrote := s.Do(from, method, payload)
		if err == nil {
			// Success stands even if a deadline marked the session broken
			// afterwards; Release keeps or discards accordingly.
			f.pool.Release(sessionKey(addr, to), s)
			return out, nil
		}
		if !s.Broken() {
			// Application or wire-kind error over a healthy session.
			f.pool.Release(sessionKey(addr, to), s)
			return nil, err
		}
		f.pool.Discard(s)
		if !fresh && !wrote {
			// Stale pooled conn, nothing sent: safe to retry on another
			// connection (the POST-path equivalent of dialing anew). Once
			// bytes may have reached the peer the call is never resent —
			// at-most-once; component failover owns the retry decision.
			continue
		}
		return nil, err
	}
}

// boundSession is a Session pinned to a (from, to) pair over a dedicated
// connection — the one-connection-per-session native mode.
type boundSession struct {
	f        *Fabric
	s        *streamcore.Session
	from, to string
	elide    bool
	closedMk bool
}

// Call implements transport.Session: the same injected-fault checks as
// Fabric.Call run per call, then the frame rides the pinned connection.
func (b *boundSession) Call(method string, payload any) (any, error) {
	if b.closedMk {
		return nil, fmt.Errorf("%w: session closed", transport.ErrCrashed)
	}
	if _, _, err := b.f.checkCall(b.from, b.to, method); err != nil {
		return nil, err
	}
	out, err, _ := b.s.Do(b.from, method, payload)
	return out, err
}

// ElidesAcks implements transport.ElidingSession: true only when this
// fabric has ack elision enabled and the peer negotiated the capability.
func (b *boundSession) ElidesAcks() bool { return b.elide && !b.closedMk }

// SendNoAck implements transport.ElidingSession: the same injected-fault
// checks run per elided call (fault parity frame by frame), then the no-ack
// frame queues to coalesce into the session's next flush.
func (b *boundSession) SendNoAck(method string, payload any) error {
	if b.closedMk {
		return fmt.Errorf("%w: session closed", transport.ErrCrashed)
	}
	if _, _, err := b.f.checkCall(b.from, b.to, method); err != nil {
		return err
	}
	return b.s.SendNoAck(b.from, method, payload)
}

// Close implements transport.Session; the connection close is the server's
// natural end-of-session signal.
func (b *boundSession) Close() error {
	if b.closedMk {
		return nil
	}
	b.closedMk = true
	b.f.pool.Discard(b.s)
	return nil
}

// OpenSession implements transport.StreamFabric: a dedicated connection
// per session (every tcp peer streams; there is no degraded mode). The
// session elides acks only when this fabric opted in and the peer
// advertised the capability — otherwise per-chunk acks keep flowing,
// bit-identically to the pre-elision protocol.
func (f *Fabric) OpenSession(from, to string) (transport.Session, error) {
	addr, isLocal, err := f.checkCall(from, to, "open-session")
	if err != nil {
		return nil, err
	}
	caps := f.peerCapabilities(addr, isLocal)
	s, err := f.dialSession(addr, to, caps)
	if err != nil {
		return nil, fmt.Errorf("%w: %s unreachable: %v", transport.ErrCrashed, to, err)
	}
	return &boundSession{f: f, s: s, from: from, to: to, elide: f.ackElide && caps.SupportsAckElide()}, nil
}

// --- server side ---

func (f *Fabric) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.srvMu.Lock()
		if f.closed.Load() {
			f.srvMu.Unlock()
			conn.Close()
			return
		}
		f.srvConns[conn] = struct{}{}
		f.srvMu.Unlock()
		f.wg.Add(1)
		go f.serveConn(conn)
	}
}

// serveConn handles one inbound streaming session: hello, then the shared
// engine's serve loop answers pipelined request frames in order, each
// through the same fault-check dispatch as every other backend (including
// the no-ack suppression path). The loop exits when the peer closes its
// end or the connection breaks.
func (f *Fabric) serveConn(conn net.Conn) {
	defer f.wg.Done()
	defer func() {
		f.srvMu.Lock()
		delete(f.srvConns, conn)
		f.srvMu.Unlock()
		conn.Close()
	}()

	nc := streamcore.NewNetConn(conn)
	_, hello, err := nc.ReadFrame(maxFrameBytes)
	if err != nil {
		return
	}
	node, err := wire.ParseStreamHello(hello)
	if err != nil {
		return
	}
	streamcore.Serve(nc, streamcore.ServeConfig{
		DefaultCodec: f.codec,
		MaxFrame:     maxFrameBytes,
		Prefix:       "tcptransport",
		Counters:     &f.counters,
		Invoke: func(req *wire.Request) *wire.Response {
			return f.dispatch(node, req)
		},
	})
}

// dispatch runs the server-side fault checks and the handler for one
// decoded request addressed to node; the reserved _fabric node serves
// discovery and advertisement.
func (f *Fabric) dispatch(node string, req *wire.Request) *wire.Response {
	if node == fabricNode {
		out, err := f.fabricMethod(req)
		if err != nil {
			return &wire.Response{Err: err.Error()}
		}
		return &wire.Response{Payload: out}
	}
	f.mu.RLock()
	h, ok := f.local[node]
	f.mu.RUnlock()

	switch {
	case !ok:
		return &wire.Response{Kind: transport.KindUnknownNode, Err: node}
	case f.Crashed(node):
		return &wire.Response{Kind: transport.KindCrashed, Err: node}
	case f.Cut(req.From, node):
		return &wire.Response{Kind: transport.KindPartitioned, Err: req.From + " <-> " + node}
	}
	out, err := safeInvoke(h, req.Method, req.Payload)
	if err != nil {
		return &wire.Response{Kind: transport.ErrorToKind(err), Err: err.Error()}
	}
	return &wire.Response{Payload: out}
}

// safeInvoke contains handler panics, exactly like the HTTP fabric:
// network peers are untrusted, and a well-formed frame carrying the wrong
// registered type must become a wire error, not a crash.
func safeInvoke(h transport.Handler, method string, payload any) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("tcptransport: handler panic on %q: %v", method, r)
		}
	}()
	return h(method, payload)
}

// --- discovery / advertisement ---

// nodesDoc is the discovery document exchanged by _nodes and _advertise,
// carried as a JSON string payload: which nodes a fabric serves, where,
// and what it is capable of — the same shape as the HTTP fabric's
// /nodes body, so the capability negotiation surface is identical.
type nodesDoc struct {
	// BaseURL is the advertising fabric's dialable address (tcp://host:port).
	BaseURL string `json:"base_url"`
	// Nodes lists the fabric's locally served node names.
	Nodes []string `json:"nodes"`
	// Routes gossips the remote routes this fabric has learned (node name
	// -> address), making discovery transitive — the same hint surface as
	// the HTTP fabric's document; local registrations always win over
	// gossiped routes.
	Routes map[string]string `json:"routes,omitempty"`
	wire.Capabilities
}

func (f *Fabric) selfDoc() nodesDoc {
	return nodesDoc{BaseURL: f.BaseURL(), Nodes: f.Nodes(), Routes: f.Routes(), Capabilities: selfCapabilities()}
}

// fabricMethod serves the reserved-node methods.
func (f *Fabric) fabricMethod(req *wire.Request) (any, error) {
	switch req.Method {
	case "_nodes":
		doc, err := json.Marshal(f.selfDoc())
		if err != nil {
			return nil, err
		}
		return string(doc), nil
	case "_advertise":
		raw, _ := req.Payload.(string)
		var doc nodesDoc
		if err := json.Unmarshal([]byte(raw), &doc); err != nil {
			return nil, fmt.Errorf("tcptransport: decoding advertisement: %w", err)
		}
		if doc.BaseURL == "" {
			return nil, errors.New("tcptransport: advertisement missing base_url")
		}
		f.recordPeer(doc)
		self, err := json.Marshal(f.selfDoc())
		if err != nil {
			return nil, err
		}
		return string(self), nil
	default:
		return nil, fmt.Errorf("tcptransport: unknown fabric method %q", req.Method)
	}
}

// recordPeer stores a peer's routes and advertised capabilities. Gossiped
// third-party routes are adopted as-is (newest gossip wins); nodes this
// fabric serves locally, and routes pointing back at this fabric, are
// skipped — mirroring the HTTP fabric.
func (f *Fabric) recordPeer(doc nodesDoc) {
	addr := strings.TrimPrefix(doc.BaseURL, Scheme)
	for _, node := range doc.Nodes {
		f.AddRoute(node, addr)
	}
	self := f.baseAddr
	for node, base := range doc.Routes {
		base = strings.TrimPrefix(base, Scheme)
		f.mu.RLock()
		_, isLocal := f.local[node]
		f.mu.RUnlock()
		if !isLocal && base != self {
			f.AddRoute(node, base)
		}
	}
	f.mu.Lock()
	f.peerCaps[addr] = doc.Capabilities
	f.mu.Unlock()
}

// PeerCapabilities returns what the fabric at addr (with or without the
// tcp:// prefix) advertised — the zero value for unknown peers.
func (f *Fabric) PeerCapabilities(addr string) wire.Capabilities {
	addr = strings.TrimPrefix(addr, Scheme)
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.peerCaps[addr]
}

// fabricCall opens a short-lived session to the reserved node at addr and
// performs one method call — the client half of discovery/advertisement.
func (f *Fabric) fabricCall(addr, method string, payload any) (string, error) {
	addr = strings.TrimPrefix(addr, Scheme)
	s, err := f.dialSession(addr, fabricNode, wire.Capabilities{})
	if err != nil {
		return "", fmt.Errorf("tcptransport: reaching fabric at %s: %w", addr, err)
	}
	defer f.pool.Discard(s)
	out, err, _ := s.Do(f.BaseURL(), method, payload)
	if err != nil {
		return "", err
	}
	doc, _ := out.(string)
	return doc, nil
}

// Advertise announces this fabric's locally served nodes to the peer
// fabric at peerAddr (so the peer can route calls back here) and returns
// the peer's own node list for symmetric route setup.
func (f *Fabric) Advertise(peerAddr string) ([]string, error) {
	self, err := json.Marshal(f.selfDoc())
	if err != nil {
		return nil, err
	}
	raw, err := f.fabricCall(peerAddr, "_advertise", string(self))
	if err != nil {
		return nil, fmt.Errorf("tcptransport: advertising to %s: %w", peerAddr, err)
	}
	var doc nodesDoc
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		return nil, err
	}
	f.recordPeer(doc)
	return doc.Nodes, nil
}

// Discover fetches the node inventory of the fabric at addr, adds a route
// for every node it serves, and records its advertised capabilities — the
// client-side entry point for capability negotiation.
func (f *Fabric) Discover(addr string) ([]string, error) {
	raw, err := f.fabricCall(addr, "_nodes", nil)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listing nodes at %s: %w", addr, err)
	}
	var doc nodesDoc
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		return nil, err
	}
	// Route through the address this fabric actually reached the peer at:
	// behind NAT the advertised one may be unreachable from here.
	doc.BaseURL = addr
	f.recordPeer(doc)
	return doc.Nodes, nil
}
