package tcptransport

// White-box tests for the raw-TCP fabric: basic RPC parity, discovery and
// advertisement, fault injection semantics, session lifecycle, and the
// allocation gate on the pipelined send path (the whole point of the
// backend is removing per-call overhead, so the gate keeps it removed).

import (
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/transport"
	"repro/internal/transport/streamcore"
	"repro/internal/transport/wire"
)

func newTestFabric(t *testing.T, opts Options) *Fabric {
	t.Helper()
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	f, err := New(opts)
	if err != nil {
		t.Fatalf("starting tcp fabric: %v", err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f
}

// TestCallRoundTrip drives registered-message calls through the loopback
// listener in every codec configuration.
func TestCallRoundTrip(t *testing.T) {
	for _, codec := range []string{"gob", "bin", "json"} {
		t.Run(codec, func(t *testing.T) {
			f := newTestFabric(t, Options{Codec: codec})
			f.Register("agg", func(method string, payload any) (any, error) {
				req := payload.(server.JoinRequest)
				return server.JoinResponse{Accepted: true, SessionID: uint64(req.ClientID) + 1}, nil
			})
			out, err := f.Call("client-7", "agg", "join", server.JoinRequest{TaskID: "t", ClientID: 7})
			if err != nil {
				t.Fatal(err)
			}
			if resp := out.(server.JoinResponse); !resp.Accepted || resp.SessionID != 8 {
				t.Fatalf("response = %+v", resp)
			}
		})
	}
}

// TestCompressedFrames exercises the per-frame deflate stage with a
// model-sized payload.
func TestCompressedFrames(t *testing.T) {
	f := newTestFabric(t, Options{Codec: "bin", Compress: "streamed"})
	f.Register("agg", func(method string, payload any) (any, error) {
		dl := payload.(server.DownloadRequest)
		params := make([]float32, 4096)
		return server.DownloadResponse{Params: params, Version: int(dl.SessionID)}, nil
	})
	out, err := f.Call("c", "agg", "download", server.DownloadRequest{TaskID: "t", SessionID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp := out.(server.DownloadResponse); resp.Version != 3 || len(resp.Params) != 4096 {
		t.Fatalf("response = %d params v%d", len(resp.Params), resp.Version)
	}
}

// TestDiscoveryAndAdvertise wires two fabrics together through the
// reserved _fabric node and checks routes and capabilities land.
func TestDiscoveryAndAdvertise(t *testing.T) {
	a := newTestFabric(t, Options{})
	b := newTestFabric(t, Options{})
	a.Register("node-a", func(method string, payload any) (any, error) { return "from-a", nil })
	b.Register("node-b", func(method string, payload any) (any, error) { return "from-b", nil })

	nodes, err := a.Discover(b.BaseURL())
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0] != "node-b" {
		t.Fatalf("discovered %v", nodes)
	}
	caps := a.PeerCapabilities(b.BaseURL())
	if !caps.SupportsStream() || !caps.SupportsBinary() || !caps.SupportsCompression() {
		t.Fatalf("peer capabilities = %+v", caps)
	}
	if out, err := a.Call("tester", "node-b", "ping", nil); err != nil || out != "from-b" {
		t.Fatalf("cross-fabric call: %v %v", out, err)
	}

	// Advertise back: b learns a's nodes.
	if _, err := a.Advertise(b.BaseURL()); err != nil {
		t.Fatal(err)
	}
	if out, err := b.Call("tester", "node-a", "ping", nil); err != nil || out != "from-a" {
		t.Fatalf("advertised route call: %v %v", out, err)
	}
}

// TestFaultParity checks the injected-fault semantics match the in-memory
// Network: unknown node, crash (callee and caller), partition/heal, and a
// genuinely dead peer process mapping to ErrCrashed.
func TestFaultParity(t *testing.T) {
	f := newTestFabric(t, Options{})
	f.Register("node", func(method string, payload any) (any, error) { return true, nil })

	if _, err := f.Call("c", "ghost", "ping", nil); !errors.Is(err, transport.ErrUnknownNode) {
		t.Fatalf("unknown node error = %v", err)
	}
	f.Crash("node")
	if _, err := f.Call("c", "node", "ping", nil); !errors.Is(err, transport.ErrCrashed) {
		t.Fatalf("crashed callee error = %v", err)
	}
	f.Register("node", func(method string, payload any) (any, error) { return true, nil })
	if _, err := f.Call("c", "node", "ping", nil); err != nil {
		t.Fatalf("restarted callee: %v", err)
	}
	f.Crash("c")
	if _, err := f.Call("c", "node", "ping", nil); !errors.Is(err, transport.ErrCrashed) {
		t.Fatalf("crashed caller error = %v", err)
	}
	f.Register("c", func(method string, payload any) (any, error) { return true, nil })
	f.Partition("c", "node")
	if _, err := f.Call("c", "node", "ping", nil); !errors.Is(err, transport.ErrPartitioned) {
		t.Fatalf("partitioned error = %v", err)
	}
	f.Heal("c", "node")
	if _, err := f.Call("c", "node", "ping", nil); err != nil {
		t.Fatalf("healed call: %v", err)
	}

	// A peer whose process is gone: the route remains but nothing listens.
	dead := newTestFabric(t, Options{})
	dead.Register("gone", func(method string, payload any) (any, error) { return true, nil })
	if _, err := f.Discover(dead.BaseURL()); err != nil {
		t.Fatal(err)
	}
	_ = dead.Close()
	if _, err := f.Call("c", "gone", "ping", nil); !errors.Is(err, transport.ErrCrashed) {
		t.Fatalf("dead process error = %v", err)
	}
}

// TestLossInjection checks SetLoss produces ErrDropped without touching
// the server side.
func TestLossInjection(t *testing.T) {
	f := newTestFabric(t, Options{Seed: 42})
	// The handler runs on the serving goroutine; the test's read at the end
	// is ordered only by socket I/O, which the race detector cannot see.
	var served atomic.Int64
	f.Register("node", func(method string, payload any) (any, error) {
		served.Add(1)
		return true, nil
	})
	f.SetLoss(0.5)
	drops := 0
	for i := 0; i < 40; i++ {
		if _, err := f.Call("c", "node", "ping", nil); errors.Is(err, transport.ErrDropped) {
			drops++
		} else if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if drops == 0 || drops == 40 {
		t.Fatalf("drops = %d/40 at p=0.5", drops)
	}
	if served.Load() != int64(40-drops) {
		t.Fatalf("served %d, want %d (drops must not reach the handler)", served.Load(), 40-drops)
	}
}

// TestOpenSessionPipelines runs a session's worth of calls over one
// dedicated connection.
func TestOpenSessionPipelines(t *testing.T) {
	f := newTestFabric(t, Options{Codec: "bin"})
	var seen atomic.Int64
	f.Register("agg", func(method string, payload any) (any, error) {
		seen.Add(1)
		return server.UploadResponse{OK: true}, nil
	})
	sess, err := f.OpenSession("client-1", "agg")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		out, err := sess.Call("upload-chunk", server.UploadChunk{
			TaskID: "t", SessionID: 1, Offset: i * 4, Data: []float32{1, 2, 3, 4},
		})
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if !out.(server.UploadResponse).OK {
			t.Fatalf("chunk %d rejected", i)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Call("upload-chunk", nil); err == nil {
		t.Fatal("call after close succeeded")
	}
	if seen.Load() != 32 {
		t.Fatalf("handler saw %d chunks", seen.Load())
	}
}

// TestReservedNodeNameRejected keeps _fabric off-limits to handlers.
func TestReservedNodeNameRejected(t *testing.T) {
	f := newTestFabric(t, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("registering the reserved node name did not panic")
		}
	}()
	f.Register(fabricNode, func(method string, payload any) (any, error) { return nil, nil })
}

// discardConn swallows writes and never delivers reads — a streamcore.Conn
// sink for measuring the send path without a live peer.
type discardConn struct{}

func (discardConn) ReadFrame(int) (byte, []byte, error) {
	return 0, nil, errors.New("discardConn: no reads")
}
func (discardConn) WriteFrames(bufs net.Buffers) (int64, error) {
	var n int64
	for _, b := range bufs {
		n += int64(len(b))
	}
	return n, nil
}
func (discardConn) SetDeadline(time.Time) error { return nil }
func (discardConn) Close() error                { return nil }

// TestPipelinedChunkSendAllocs is the alloc gate on the streaming hot
// path: with the bin codec, sending one pipelined no-ack upload chunk
// (encode the frame into pooled scratch, length-prefix it, coalesce and
// write it) must stay <= 2 heap allocations — the same discipline the wire
// benches enforce on the decode side. Regressions here mean the engine's
// per-session scratch reuse broke.
func TestPipelinedChunkSendAllocs(t *testing.T) {
	s := streamcore.NewSession(discardConn{}, streamcore.Config{
		Codec:    wire.Binary{},
		Node:     "agg",
		Prefix:   "tcptransport",
		MaxFrame: maxFrameBytes,
		Counters: &streamcore.Counters{},
	})
	chunk := server.UploadChunk{
		TaskID:    "bench-task",
		SessionID: 9,
		Offset:    4096,
		Data:      make([]float32, 1024),
	}
	var payload any = chunk // box once, outside the measured loop
	// Warm the scratch buffers and frame pool.
	if err := s.SendNoAck("client-1", "upload-chunk", payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.SendNoAck("client-1", "upload-chunk", payload); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("pipelined chunk send costs %.1f allocs, want <= 2", allocs)
	}
}

// TestCloseDoesNotLeakGoroutines opens sessions and fabrics, closes them,
// and checks the goroutine count settles.
func TestCloseDoesNotLeakGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		f, err := New(Options{Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		f.Register("node", func(method string, payload any) (any, error) { return true, nil })
		for j := 0; j < 4; j++ {
			sess, err := f.OpenSession("c", "node")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Call("ping", nil); err != nil {
				t.Fatal(err)
			}
			sess.Close()
		}
		if _, err := f.Call("c", "node", "ping", nil); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines: %d at start, %d after close\n%s",
		base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestRouteGossipIsTransitive mirrors the HTTP fabric's gossip test: a
// selector fabric that only Discovers the coordinator's fabric learns the
// routes of everyone who advertised there.
func TestRouteGossipIsTransitive(t *testing.T) {
	coordSide := newTestFabric(t, Options{})
	coordSide.Register("coordinator", func(method string, payload any) (any, error) { return true, nil })

	agentSide := newTestFabric(t, Options{})
	agentSide.Register("agg-g", func(method string, payload any) (any, error) { return "agg-g here", nil })
	if _, err := agentSide.Advertise(coordSide.BaseURL()); err != nil {
		t.Fatal(err)
	}

	selSide := newTestFabric(t, Options{})
	if _, err := selSide.Discover(coordSide.BaseURL()); err != nil {
		t.Fatal(err)
	}
	if got, want := selSide.Routes()["agg-g"], strings.TrimPrefix(agentSide.BaseURL(), Scheme); got != want {
		t.Fatalf("gossiped route for agg-g = %q, want %q", got, want)
	}
	out, err := selSide.Call("sel-g", "agg-g", "join", nil)
	if err != nil {
		t.Fatalf("selector -> gossiped agent: %v", err)
	}
	if out != "agg-g here" {
		t.Fatalf("gossiped-route response = %v", out)
	}
}

// TestAckElideEndToEnd: with Options.AckElide toward a negotiated peer
// (loopback fabrics always negotiate), non-final chunk sends ride the
// stream without acknowledgements, the serving side invokes every one of
// them, and only the final acked call crosses with a reply. The shared
// counters prove acks were actually elided and the coalesced flush batched
// the queued frames.
func TestAckElideEndToEnd(t *testing.T) {
	f := newTestFabric(t, Options{Codec: "bin", AckElide: true})
	// The handler runs on the serving goroutine; the only ordering toward
	// the test's final read is socket I/O, which the race detector cannot
	// see, so the record needs its own lock.
	var mu sync.Mutex
	var methods []string
	f.Register("agg", func(method string, payload any) (any, error) {
		mu.Lock()
		methods = append(methods, method)
		mu.Unlock()
		return server.UploadResponse{OK: true}, nil
	})
	sess, err := f.OpenSession("client-1", "agg")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	es, ok := sess.(transport.ElidingSession)
	if !ok || !es.ElidesAcks() {
		t.Fatalf("loopback session does not elide (ok=%v)", ok)
	}
	for i := 0; i < 5; i++ {
		if err := es.SendNoAck("chunk", server.FailRequest{TaskID: "t", SessionID: uint64(i)}); err != nil {
			t.Fatalf("no-ack send %d: %v", i, err)
		}
	}
	out, err := es.Call("done", server.FailRequest{TaskID: "t", SessionID: 99})
	if err != nil {
		t.Fatalf("final acked call: %v", err)
	}
	if ur := out.(server.UploadResponse); !ur.OK {
		t.Fatalf("final response = %+v", ur)
	}
	mu.Lock()
	if len(methods) != 6 || methods[0] != "chunk" || methods[5] != "done" {
		t.Fatalf("handler saw %v", methods)
	}
	mu.Unlock()
	st := f.Stats()
	if st.AcksElided < 5 {
		t.Fatalf("AcksElided = %d, want >= 5", st.AcksElided)
	}
	if st.FramesCoalesced == 0 {
		t.Fatal("queued no-ack frames never coalesced into a batched write")
	}
}

// TestAckElideHeldFailureSurfacesOnNextCall: the no-ack serving protocol —
// the first non-suppressible response to an elided frame is held, later
// elided frames are drained without dispatch, and the next acknowledged
// call is answered with the held response instead of being invoked. This
// is what lets an elided chunk train fail loudly on its Done chunk.
func TestAckElideHeldFailureSurfacesOnNextCall(t *testing.T) {
	f := newTestFabric(t, Options{Codec: "bin", AckElide: true})
	var mu sync.Mutex
	var methods []string
	f.Register("agg", func(method string, payload any) (any, error) {
		mu.Lock()
		methods = append(methods, method)
		mu.Unlock()
		if method == "bad" {
			return server.UploadResponse{OK: false, Reason: "nope"}, nil
		}
		return server.UploadResponse{OK: true}, nil
	})
	sess, err := f.OpenSession("client-1", "agg")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	es := sess.(transport.ElidingSession)
	for _, m := range []string{"ok", "bad", "after"} {
		if err := es.SendNoAck(m, server.FailRequest{TaskID: "t"}); err != nil {
			t.Fatalf("no-ack %s: %v", m, err)
		}
	}
	out, err := es.Call("final", server.FailRequest{TaskID: "t"})
	if err != nil {
		t.Fatalf("acked call after held failure: %v", err)
	}
	ur := out.(server.UploadResponse)
	if ur.OK || ur.Reason != "nope" {
		t.Fatalf("held response = %+v, want the bad chunk's failure", ur)
	}
	// "after" was drained without dispatch and "final" was answered from
	// the held response without being invoked.
	mu.Lock()
	if len(methods) != 2 || methods[0] != "ok" || methods[1] != "bad" {
		t.Fatalf("handler saw %v", methods)
	}
	mu.Unlock()
}

// TestAckElideDegradesForUnknownCapsPeer: toward a peer whose capability
// document was never fetched (the zero document — a /v1 peer), the session
// still streams (TCP always does) but must keep per-chunk acknowledgements:
// the elision surface reports false and no acks are elided.
func TestAckElideDegradesForUnknownCapsPeer(t *testing.T) {
	srv := newTestFabric(t, Options{})
	srv.Register("node", func(method string, payload any) (any, error) {
		return server.UploadResponse{OK: true}, nil
	})
	caller := newTestFabric(t, Options{AckElide: true})
	// AddRoute without Discover: capabilities stay unknown.
	caller.AddRoute("node", srv.BaseURL())

	sess, err := caller.OpenSession("client-1", "node")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if es, ok := sess.(transport.ElidingSession); ok && es.ElidesAcks() {
		t.Fatal("session elides acks toward a peer that never negotiated the capability")
	}
	out, err := sess.Call("chunk", server.FailRequest{TaskID: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if ur := out.(server.UploadResponse); !ur.OK {
		t.Fatalf("per-chunk acked call = %+v", ur)
	}
	if st := caller.Stats(); st.AcksElided != 0 {
		t.Fatalf("AcksElided = %d toward a non-negotiating peer", st.AcksElided)
	}
}
