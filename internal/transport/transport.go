// Package transport defines the RPC fabric connecting the production-style
// PAPAYA components (Coordinator, Selectors, Aggregators, clients; Section 4)
// and provides the in-memory reference implementation. Components program
// against the Fabric interface, so the same control plane runs over the
// deterministic in-memory Network in tests and over real HTTP between OS
// processes via internal/transport/httptransport. The in-memory backend
// stands in for the data-center network: synchronous request/response calls
// with injectable latency, message loss, partitions, and node crashes, so the
// failure-recovery behaviour of Appendix E.4 can be exercised
// deterministically.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/transport/wire"
)

// Handler processes one request addressed to a node.
type Handler func(method string, payload any) (any, error)

// Fabric is the RPC surface the control plane is written against: named
// nodes exchanging synchronous request/response calls (the paper's
// Coordinator <-> Aggregator <-> Selector <-> client protocols, Section 4).
// Implementations must be safe for concurrent use. Two backends exist: the
// in-memory Network below (deterministic, fault-injectable, the test
// fabric) and httptransport.Fabric (real HTTP between processes).
type Fabric interface {
	// Call sends a synchronous request from one node to another and
	// returns the response. Transport-level failures are reported as (or
	// wrap) ErrUnknownNode, ErrPartitioned, ErrDropped, or ErrCrashed;
	// components treat all of them as transient and retry through their
	// failover paths (Appendix E.4).
	Call(from, to, method string, payload any) (any, error)
	// Register attaches a node under a name, replacing any previous
	// handler (a restarted process) and clearing its crash marker.
	Register(name string, h Handler)
	// Unregister detaches a node entirely.
	Unregister(name string)
}

// FaultInjector is the optional fault-injection surface a Fabric may offer
// so the failure-recovery protocols of Appendix E.4 can be exercised. Both
// the in-memory Network and the HTTP backend implement it; the conformance
// suite in internal/server runs the same failover tests against each.
type FaultInjector interface {
	// Crash marks a node as crashed: calls to and from it fail with
	// ErrCrashed until it re-registers.
	Crash(name string)
	// Partition cuts connectivity between a and b (both directions).
	Partition(a, b string)
	// Heal restores connectivity between a and b.
	Heal(a, b string)
	// SetLoss sets the independent per-call drop probability in [0, 1).
	SetLoss(p float64)
	// SetLatency sets a fixed one-way call latency (applied once per call).
	SetLatency(d time.Duration)
}

// Network implements both interfaces; httptransport.Fabric asserts the same
// at its definition site.
var (
	_ Fabric        = (*Network)(nil)
	_ FaultInjector = (*Network)(nil)
)

// Errors surfaced to callers. Components treat all of them as transient and
// retry through their failover paths.
var (
	ErrUnknownNode = errors.New("transport: unknown node")
	ErrPartitioned = errors.New("transport: nodes are partitioned")
	ErrDropped     = errors.New("transport: message dropped")
	ErrCrashed     = errors.New("transport: node crashed")
)

// Network is the in-memory Fabric: it routes calls between registered nodes
// within one process, with deterministic fault injection (the test backend;
// Appendix E.4 failure drills run here). It is safe for concurrent use.
type Network struct {
	mu       sync.RWMutex
	nodes    map[string]Handler
	crashed  map[string]bool
	cuts     map[[2]string]bool
	lossProb float64
	latency  time.Duration
	rnd      *rand.Rand
	rndMu    sync.Mutex
}

// NewNetwork returns an empty network with no faults.
func NewNetwork(seed int64) *Network {
	return &Network{
		nodes:   make(map[string]Handler),
		crashed: make(map[string]bool),
		cuts:    make(map[[2]string]bool),
		rnd:     rand.New(rand.NewSource(seed)),
	}
}

// Register attaches a node. Re-registering a name replaces its handler and
// clears any crash marker (a restarted process).
func (n *Network) Register(name string, h Handler) {
	if h == nil {
		panic("transport: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[name] = h
	delete(n.crashed, name)
}

// Unregister detaches a node entirely.
func (n *Network) Unregister(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, name)
}

// Crash marks a node as crashed: calls to it fail until it re-registers.
func (n *Network) Crash(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[name] = true
}

// Partition cuts connectivity between a and b (both directions).
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cuts[cutKey(a, b)] = true
}

// Heal restores connectivity between a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cuts, cutKey(a, b))
}

// SetLoss sets the independent per-call drop probability.
func (n *Network) SetLoss(p float64) {
	if p < 0 || p >= 1 {
		panic("transport: loss probability must be in [0, 1)")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossProb = p
}

// SetLatency sets a fixed one-way call latency (applied once per call).
func (n *Network) SetLatency(d time.Duration) {
	if d < 0 {
		panic("transport: negative latency")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

func cutKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Call sends a synchronous request from one node to another and returns the
// response. Fault checks happen before the handler runs, so a dropped or
// partitioned call has no server-side effect.
func (n *Network) Call(from, to, method string, payload any) (any, error) {
	n.mu.RLock()
	h, ok := n.nodes[to]
	crashedTo := n.crashed[to]
	crashedFrom := n.crashed[from]
	cut := n.cuts[cutKey(from, to)]
	loss := n.lossProb
	latency := n.latency
	n.mu.RUnlock()

	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	if crashedTo {
		return nil, fmt.Errorf("%w: %s", ErrCrashed, to)
	}
	// A crashed process cannot send either: without this, a "dead"
	// aggregator would keep heartbeating and failure detection could never
	// fire.
	if crashedFrom {
		return nil, fmt.Errorf("%w: %s (sender)", ErrCrashed, from)
	}
	if cut {
		return nil, fmt.Errorf("%w: %s <-> %s", ErrPartitioned, from, to)
	}
	if loss > 0 {
		n.rndMu.Lock()
		drop := n.rnd.Float64() < loss
		n.rndMu.Unlock()
		if drop {
			return nil, fmt.Errorf("%w: %s -> %s %s", ErrDropped, from, to, method)
		}
	}
	if latency > 0 {
		time.Sleep(latency)
	}
	out, err := h(method, payload)
	// Mirror the networked fabrics' response-lease lifecycle: they release
	// pooled response vectors once the frame is encoded and the caller
	// decodes an independent copy. In-process there is no encode, so
	// responses that serve pooled buffers (wire.ResponseSnapshot) are
	// snapshotted into caller-owned memory and the handler's lease released
	// here — otherwise every in-memory download would strand a pooled
	// vector and skew the outstanding-lease counters.
	if snap, ok := out.(wire.ResponseSnapshot); ok {
		out = snap.SnapshotResponseBuffers()
		snap.ReleaseResponseBuffers()
	}
	return out, err
}

// Nodes returns the names of all registered, non-crashed nodes.
func (n *Network) Nodes() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		if !n.crashed[name] {
			out = append(out, name)
		}
	}
	return out
}
