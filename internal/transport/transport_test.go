package transport

import (
	"errors"
	"sync"
	"testing"
)

func echoNode(t *testing.T, n *Network, name string) {
	t.Helper()
	n.Register(name, func(method string, payload any) (any, error) {
		if method == "fail" {
			return nil, errors.New("handler error")
		}
		return payload, nil
	})
}

func TestCallRoundTrip(t *testing.T) {
	n := NewNetwork(1)
	echoNode(t, n, "b")
	out, err := n.Call("a", "b", "echo", 42)
	if err != nil {
		t.Fatal(err)
	}
	if out.(int) != 42 {
		t.Fatalf("out = %v", out)
	}
}

func TestUnknownNode(t *testing.T) {
	n := NewNetwork(1)
	if _, err := n.Call("a", "ghost", "x", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestHandlerErrorsPropagate(t *testing.T) {
	n := NewNetwork(1)
	echoNode(t, n, "b")
	if _, err := n.Call("a", "b", "fail", nil); err == nil {
		t.Fatal("handler error swallowed")
	}
}

func TestCrashAndRestart(t *testing.T) {
	n := NewNetwork(1)
	echoNode(t, n, "b")
	n.Crash("b")
	if _, err := n.Call("a", "b", "echo", 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	// Re-registration models a restart.
	echoNode(t, n, "b")
	if _, err := n.Call("a", "b", "echo", 1); err != nil {
		t.Fatalf("restarted node unreachable: %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := NewNetwork(1)
	echoNode(t, n, "b")
	n.Partition("a", "b")
	if _, err := n.Call("a", "b", "echo", 1); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v", err)
	}
	// Partition is symmetric.
	echoNode(t, n, "a")
	if _, err := n.Call("b", "a", "echo", 1); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("reverse direction not cut: %v", err)
	}
	// Other pairs unaffected.
	echoNode(t, n, "c")
	if _, err := n.Call("a", "c", "echo", 1); err != nil {
		t.Fatalf("unrelated pair cut: %v", err)
	}
	n.Heal("b", "a") // order-insensitive
	if _, err := n.Call("a", "b", "echo", 1); err != nil {
		t.Fatalf("heal failed: %v", err)
	}
}

func TestLoss(t *testing.T) {
	n := NewNetwork(7)
	echoNode(t, n, "b")
	n.SetLoss(0.5)
	drops := 0
	const total = 2000
	for i := 0; i < total; i++ {
		if _, err := n.Call("a", "b", "echo", i); errors.Is(err, ErrDropped) {
			drops++
		}
	}
	if drops < total/4 || drops > 3*total/4 {
		t.Fatalf("drops = %d/%d with p=0.5", drops, total)
	}
	n.SetLoss(0)
	if _, err := n.Call("a", "b", "echo", 1); err != nil {
		t.Fatal("loss=0 still dropping")
	}
}

func TestSetLossValidation(t *testing.T) {
	n := NewNetwork(1)
	for _, p := range []float64{-0.1, 1.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("loss %v accepted", p)
				}
			}()
			n.SetLoss(p)
		}()
	}
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler accepted")
		}
	}()
	NewNetwork(1).Register("x", nil)
}

func TestNodesExcludesCrashed(t *testing.T) {
	n := NewNetwork(1)
	echoNode(t, n, "a")
	echoNode(t, n, "b")
	n.Crash("b")
	nodes := n.Nodes()
	if len(nodes) != 1 || nodes[0] != "a" {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestUnregister(t *testing.T) {
	n := NewNetwork(1)
	echoNode(t, n, "b")
	n.Unregister("b")
	if _, err := n.Call("a", "b", "echo", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := NewNetwork(1)
	var mu sync.Mutex
	count := 0
	n.Register("b", func(string, any) (any, error) {
		mu.Lock()
		count++
		mu.Unlock()
		return nil, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_, _ = n.Call("a", "b", "x", nil)
			}
		}()
	}
	wg.Wait()
	if count != 1600 {
		t.Fatalf("count = %d", count)
	}
}

func TestCrashedSenderCannotCall(t *testing.T) {
	n := NewNetwork(1)
	echoNode(t, n, "b")
	echoNode(t, n, "a")
	n.Crash("a")
	if _, err := n.Call("a", "b", "echo", 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed sender's call went through: %v", err)
	}
	// The healthy direction toward the crashed node also fails.
	if _, err := n.Call("b", "a", "echo", 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("call to crashed node went through: %v", err)
	}
}
