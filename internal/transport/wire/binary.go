// The binary fast-path codec. Profiling the loopback loadtest showed the
// serving path CPU-bound inside encoding/gob: every hot RPC (check-in,
// report, chunk upload, download) pays reflection over interface-typed
// payloads, and model-sized []float32 fields are walked element by element.
// Binary ("bin") replaces that with a hand-rolled little-endian wire form
// for the hot messages — fixed headers, length-prefixed fields, bulk vector
// copies, zero reflection — and keeps a gob envelope as the in-frame
// fallback for cold messages (task specs, heartbeat reports), so every
// registered message still crosses.
//
// Like wire compression, bin is a negotiated /v2/ capability (versioning
// rule 4): a fabric sends bin frames only to peers whose discovery document
// advertised the "bin" codec, and speaks gob to everyone else. A /v1/ peer
// keeps receiving exactly the gob bytes it always did.
//
// Hot messages register a hand-rolled encoder/decoder pair here via
// BinaryMessage + RegisterBinary (internal/server owns the message types,
// so it owns their binary form too — see internal/server/binwire.go).
// Decoders lease vector buffers from internal/vecpool; the transport
// returns them once the handler is done (see BufferLease).

package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"sync"
)

// BinaryMessage is implemented by messages that have a hand-rolled binary
// wire form. AppendBinary must be the exact inverse of the decoder
// registered for BinaryID, and must not fail: binary messages are built
// from plain data fields only.
type BinaryMessage interface {
	// BinaryID is the message's one-byte identifier in binary payloads
	// (>= BinaryIDMin; smaller values are wire-internal tags).
	BinaryID() byte
	// AppendBinary appends the message's binary encoding to dst.
	AppendBinary(dst []byte) []byte
}

// BufferLease is implemented by request messages whose binary decoder
// leases buffers from internal/vecpool (UploadChunk's vectors). The HTTP
// transport calls ReleaseBinaryBuffers after the handler (and the response
// encode) are done, so a handler must copy any vector it keeps — the same
// contract handlers already honor, since in-memory payloads share memory
// with the caller.
type BufferLease interface {
	// ReleaseBinaryBuffers returns leased vectors to their pools.
	ReleaseBinaryBuffers()
}

// ResponseBufferLease is the response-side counterpart of BufferLease:
// implemented by response messages whose vectors the handler leased from a
// pool (a download's model snapshot). The HTTP transport releases them
// once the response frame is encoded. It is a distinct interface from
// BufferLease so a handler echoing its request payload back cannot cause a
// double release.
type ResponseBufferLease interface {
	// ReleaseResponseBuffers returns leased vectors to their pools.
	ReleaseResponseBuffers()
}

// ResponseSnapshot is the in-process counterpart of ResponseBufferLease.
// Networked fabrics release a response's pooled buffers after encoding its
// frame — the remote caller decodes an independent copy, so the lease and
// the caller's lifetime never overlap. The in-memory fabric has no encode
// step: without intervention the caller would keep the handler's pooled
// vectors forever, draining the pool and skewing the outstanding-lease
// counters. A response implementing this interface lets the in-memory
// fabric reproduce the networked lifecycle: it hands the caller
// SnapshotResponseBuffers' plain copy (the moral equivalent of the remote
// decode) and releases the original via ReleaseResponseBuffers.
type ResponseSnapshot interface {
	ResponseBufferLease
	// SnapshotResponseBuffers returns a copy of the response whose pooled
	// vectors are replaced by plain caller-owned allocations. The copy must
	// not alias any buffer ReleaseResponseBuffers returns to a pool.
	SnapshotResponseBuffers() any
}

// Appender is the allocation-free encode surface a codec may offer:
// encoding into a caller-provided buffer instead of a fresh allocation.
// The HTTP transport detects it and recycles frame buffers through a pool.
type Appender interface {
	// AppendRequest appends an encoded request frame to dst.
	AppendRequest(dst []byte, r *Request) ([]byte, error)
	// AppendResponse appends an encoded response frame to dst.
	AppendResponse(dst []byte, r *Response) ([]byte, error)
}

// BinaryIDMin is the first message ID available to RegisterBinary; smaller
// values are payload tags owned by this package.
const BinaryIDMin = 16

// Payload tags below BinaryIDMin.
const (
	binTagNil  = 0 // nil payload (map-request style calls)
	binTagGob  = 1 // gob-envelope fallback for messages without a binary form
	binTagStr  = 2 // bare string payload (register-aggregator, task-info)
	binTagBool = 3 // bare bool payload (acks)
)

// Frame kinds (byte 3 of the header).
const (
	binFrameRequest  = 1
	binFrameResponse = 2
)

// maxBinaryElems bounds the element count a binary vector field may
// declare, mirroring the compression-frame bound: a hostile header must
// not buy a huge allocation before length validation.
const maxBinaryElems = 1 << 27

// --- binary message registry ---

var (
	binMu       sync.RWMutex
	binDecoders [256]func([]byte) (any, error)
)

// RegisterBinary records the decode half of a hand-rolled binary message
// under its one-byte ID. The encode half is the message's own AppendBinary.
// Re-registering an ID panics — a wire-format bug, caught at init time.
func RegisterBinary(id byte, dec func(body []byte) (any, error)) {
	if id < BinaryIDMin {
		panic(fmt.Sprintf("wire: binary ID %d is reserved (min %d)", id, BinaryIDMin))
	}
	if dec == nil {
		panic("wire: nil binary decoder")
	}
	binMu.Lock()
	defer binMu.Unlock()
	if binDecoders[id] != nil {
		panic(fmt.Sprintf("wire: binary ID %d already registered", id))
	}
	binDecoders[id] = dec
}

func binaryDecoder(id byte) func([]byte) (any, error) {
	binMu.RLock()
	defer binMu.RUnlock()
	return binDecoders[id]
}

// --- the codec ---

// Binary is the zero-reflection fast-path codec ("bin"): fixed little-
// endian header, length-prefixed fields, bulk []float32/[]uint32 copies
// for the hot control-plane messages, gob fallback inside the frame for
// everything else. Negotiated as a /v2/ capability; gob remains the
// universal default.
type Binary struct{}

// Name implements Codec.
func (Binary) Name() string { return "bin" }

// ContentType implements Codec.
func (Binary) ContentType() string { return "application/x-papaya-bin" }

// AppendRequest implements Appender.
func (Binary) AppendRequest(dst []byte, r *Request) ([]byte, error) {
	dst = append(dst, 'P', 'B', Version, binFrameRequest)
	dst = AppendString(dst, r.From)
	dst = AppendString(dst, r.Method)
	return AppendPayloadBinary(dst, r.Payload)
}

// AppendResponse implements Appender.
func (Binary) AppendResponse(dst []byte, r *Response) ([]byte, error) {
	dst = append(dst, 'P', 'B', Version, binFrameResponse)
	dst = AppendString(dst, r.Err)
	dst = AppendString(dst, r.Kind)
	return AppendPayloadBinary(dst, r.Payload)
}

// EncodeRequest implements Codec.
func (b Binary) EncodeRequest(r *Request) ([]byte, error) { return b.AppendRequest(nil, r) }

// EncodeResponse implements Codec.
func (b Binary) EncodeResponse(r *Response) ([]byte, error) { return b.AppendResponse(nil, r) }

func checkBinaryHeader(b []byte, kind byte) ([]byte, error) {
	if len(b) < 4 || b[0] != 'P' || b[1] != 'B' {
		return nil, errors.New("wire: not a papaya binary frame")
	}
	if b[2] != Version {
		return nil, fmt.Errorf("wire: envelope version %d, this build speaks %d", b[2], Version)
	}
	if b[3] != kind {
		return nil, fmt.Errorf("wire: binary frame kind %d, want %d", b[3], kind)
	}
	return b[4:], nil
}

// DecodeRequest implements Codec.
func (Binary) DecodeRequest(b []byte) (*Request, error) {
	body, err := checkBinaryHeader(b, binFrameRequest)
	if err != nil {
		return nil, err
	}
	from, body, err := ReadString(body)
	if err != nil {
		return nil, err
	}
	method, body, err := ReadString(body)
	if err != nil {
		return nil, err
	}
	payload, err := DecodePayloadBinary(body)
	if err != nil {
		return nil, err
	}
	return &Request{From: from, Method: method, Payload: payload}, nil
}

// DecodeResponse implements Codec.
func (Binary) DecodeResponse(b []byte) (*Response, error) {
	body, err := checkBinaryHeader(b, binFrameResponse)
	if err != nil {
		return nil, err
	}
	errStr, body, err := ReadString(body)
	if err != nil {
		return nil, err
	}
	kind, body, err := ReadString(body)
	if err != nil {
		return nil, err
	}
	payload, err := DecodePayloadBinary(body)
	if err != nil {
		return nil, err
	}
	return &Response{Payload: payload, Err: errStr, Kind: kind}, nil
}

// --- payload encoding ---

// binGobPayload wraps the gob-fallback payload so interface-typed values
// encode with their registered concrete type (wire.Register already
// gob-registers every message).
type binGobPayload struct{ V any }

var gobBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// AppendPayloadBinary appends the binary payload encoding of v: a one-byte
// tag followed by the message body, which extends to the end of the
// buffer. Hot messages (BinaryMessage implementers) get their hand-rolled
// form; strings, bools, and nil have wire-native tags; everything else
// rides a gob envelope inside the frame. Exported so nested-payload
// messages (server.RouteRequest) can reuse it.
func AppendPayloadBinary(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, binTagNil), nil
	case string:
		return AppendString(append(dst, binTagStr), x), nil
	case bool:
		return AppendBool(append(dst, binTagBool), x), nil
	}
	if bm, ok := v.(BinaryMessage); ok {
		id := bm.BinaryID()
		if id < BinaryIDMin {
			return nil, fmt.Errorf("wire: %T declares reserved binary ID %d", v, id)
		}
		if binaryDecoder(id) == nil {
			return nil, fmt.Errorf("wire: %T encodes binary ID %d but no decoder is registered", v, id)
		}
		return bm.AppendBinary(append(dst, id)), nil
	}
	// Cold path: gob envelope. The message must still be registered (rule
	// 2) — unregistered types fail here exactly as they do under Gob.
	if _, err := lookupName(v); err != nil {
		return nil, err
	}
	buf := gobBufPool.Get().(*bytes.Buffer)
	defer gobBufPool.Put(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(&binGobPayload{V: v}); err != nil {
		return nil, err
	}
	return append(append(dst, binTagGob), buf.Bytes()...), nil
}

// DecodePayloadBinary reverses AppendPayloadBinary, consuming the whole
// buffer. Trailing bytes after a complete message are an error: a frame
// either parses exactly or is rejected.
func DecodePayloadBinary(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, errors.New("wire: truncated binary payload")
	}
	tag, body := b[0], b[1:]
	switch tag {
	case binTagNil:
		if len(body) != 0 {
			return nil, errors.New("wire: trailing bytes after nil payload")
		}
		return nil, nil
	case binTagStr:
		s, rest, err := ReadString(body)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, errors.New("wire: trailing bytes after string payload")
		}
		return s, nil
	case binTagBool:
		v, rest, err := ReadBool(body)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, errors.New("wire: trailing bytes after bool payload")
		}
		return v, nil
	case binTagGob:
		var w binGobPayload
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&w); err != nil {
			return nil, fmt.Errorf("wire: decoding gob-fallback payload: %w", err)
		}
		return w.V, nil
	}
	dec := binaryDecoder(tag)
	if dec == nil {
		return nil, fmt.Errorf("wire: unregistered binary message ID %d", tag)
	}
	return dec(body)
}

// --- field helpers (shared with the message owners) ---

// String interning for the short identifiers that repeat on every RPC
// (task IDs, method names, node names, abort reasons): decoding them must
// not allocate per frame. The table is capped so hostile unique strings
// cannot grow it without bound — over the cap, decode falls back to a
// plain copy.
const (
	internMaxLen     = 64
	internMaxEntries = 4096
)

var (
	internMu  sync.RWMutex
	internTab = make(map[string]string)
)

func intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxLen {
		return string(b)
	}
	internMu.RLock()
	s, ok := internTab[string(b)] // no-alloc map lookup
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	if len(internTab) < internMaxEntries {
		internTab[s] = s
	}
	internMu.Unlock()
	return s
}

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// ReadUvarint reads an unsigned varint, returning the remaining bytes.
func ReadUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errors.New("wire: truncated varint")
	}
	return v, b[n:], nil
}

// AppendVarint appends v as a zigzag-encoded signed varint.
func AppendVarint(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

// ReadVarint reads a zigzag-encoded signed varint.
func ReadVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, errors.New("wire: truncated varint")
	}
	return v, b[n:], nil
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ReadString reads a length-prefixed string. Short strings are interned,
// so repeated identifiers (task IDs, methods) decode without allocating.
func ReadString(b []byte) (string, []byte, error) {
	n, rest, err := ReadUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, errors.New("wire: string length exceeds frame")
	}
	return intern(rest[:n]), rest[n:], nil
}

// AppendBool appends a bool as one byte.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// ReadBool reads a one-byte bool, rejecting values other than 0 and 1 so
// flags stay canonical.
func ReadBool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, errors.New("wire: truncated bool")
	}
	if b[0] > 1 {
		return false, nil, fmt.Errorf("wire: bool byte %d", b[0])
	}
	return b[0] == 1, b[1:], nil
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(dst []byte, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	return append(dst, src...)
}

// ReadBytes reads a length-prefixed byte slice, copying out of the frame
// (frame buffers are pooled and recycled; decoded messages must not alias
// them). Empty decodes as nil, per versioning rule 3.
func ReadBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := ReadUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, errors.New("wire: byte-field length exceeds frame")
	}
	if n == 0 {
		return nil, rest, nil
	}
	out := make([]byte, n)
	copy(out, rest[:n])
	return out, rest[n:], nil
}

// AppendStringSlice appends a length-prefixed slice of strings.
func AppendStringSlice(dst []byte, src []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	for _, s := range src {
		dst = AppendString(dst, s)
	}
	return dst
}

// ReadStringSlice reads a length-prefixed slice of strings. Empty decodes
// as nil.
func ReadStringSlice(b []byte) ([]string, []byte, error) {
	n, rest, err := ReadUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	// Each element costs at least its 1-byte length prefix, so a tiny
	// hostile frame cannot declare a huge slice.
	if n > uint64(len(rest)) {
		return nil, nil, errors.New("wire: string-slice length exceeds frame")
	}
	if n == 0 {
		return nil, rest, nil
	}
	out := make([]string, n)
	for i := range out {
		out[i], rest, err = ReadString(rest)
		if err != nil {
			return nil, nil, err
		}
	}
	return out, rest, nil
}

// AppendFloat32s appends a length-prefixed []float32 as packed
// little-endian IEEE 754 bits — the bulk copy that replaces gob's
// per-element reflection on model-sized vectors.
func AppendFloat32s(dst []byte, src []float32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	off := len(dst)
	dst = append(dst, make([]byte, 4*len(src))...)
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[off+4*i:], math.Float32bits(v))
	}
	return dst
}

// ReadFloat32s reads a length-prefixed packed []float32. alloc supplies
// the destination slice for a given element count (pass vecpool.GetFloats
// to lease from the pool, or nil for a plain allocation); the declared
// count is validated against the remaining frame bytes before alloc runs.
// Empty decodes as nil.
func ReadFloat32s(b []byte, alloc func(int) []float32) ([]float32, []byte, error) {
	n64, rest, err := ReadUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n64 > maxBinaryElems || 4*n64 > uint64(len(rest)) {
		return nil, nil, errors.New("wire: float vector exceeds frame")
	}
	n := int(n64)
	if n == 0 {
		return nil, rest, nil
	}
	var out []float32
	if alloc != nil {
		out = alloc(n)
	} else {
		out = make([]float32, n)
	}
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest[4*i:]))
	}
	return out, rest[4*n:], nil
}

// AppendUint32s appends a length-prefixed []uint32 as packed little-endian
// words (SecAgg masked vectors).
func AppendUint32s(dst []byte, src []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	off := len(dst)
	dst = append(dst, make([]byte, 4*len(src))...)
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[off+4*i:], v)
	}
	return dst
}

// ReadUint32s reads a length-prefixed packed []uint32; see ReadFloat32s
// for the alloc contract (pass vecpool.GetUints to lease from the pool).
func ReadUint32s(b []byte, alloc func(int) []uint32) ([]uint32, []byte, error) {
	n64, rest, err := ReadUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n64 > maxBinaryElems || 4*n64 > uint64(len(rest)) {
		return nil, nil, errors.New("wire: uint vector exceeds frame")
	}
	n := int(n64)
	if n == 0 {
		return nil, rest, nil
	}
	var out []uint32
	if alloc != nil {
		out = alloc(n)
	} else {
		out = make([]uint32, n)
	}
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(rest[4*i:])
	}
	return out, rest[4*n:], nil
}
