package wire_test

// Fuzz coverage for the binary decoder: frames arrive from unauthenticated
// network peers, so truncated, length-lying, and bit-flipped inputs must
// produce errors, never panics, unbounded allocations, or pool corruption.
// The harness mirrors the transport's lifecycle, including the
// buffer-lease release, so the fuzzer also exercises the pool discipline.

import (
	"testing"

	"repro/internal/server"
	"repro/internal/transport/wire"
)

func FuzzBinaryDecode(f *testing.F) {
	bin := wire.Binary{}

	// Seed with real frames of every hot shape so mutation starts from
	// deep in the format, plus a few deliberately broken ones.
	seedReqs := []*wire.Request{
		{From: "client-1", Method: "upload-chunk", Payload: benchChunk(32)},
		{From: "client-1", Method: "route", Payload: server.RouteRequest{
			TaskID: "t", Method: "upload-chunk", Payload: benchChunk(8),
		}},
		{From: "sel-0", Method: "checkin", Payload: server.CheckinRequest{
			ClientID: 7, Capabilities: []string{"lm"},
		}},
		{From: "c", Method: "report", Payload: server.ReportRequest{
			TaskID: "t", SessionID: 3, Compress: []string{"quantized", "none"},
		}},
		{From: "c", Method: "m", Payload: "a-string"},
		{From: "c", Method: "m", Payload: nil},
		{From: "agg-0", Method: "agg-report", Payload: server.AggDirective{DropTasks: []string{"x"}}},
	}
	for _, r := range seedReqs {
		frame, err := bin.EncodeRequest(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	respFrame, err := bin.EncodeResponse(&wire.Response{Payload: benchDownload(16)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(respFrame)
	f.Add([]byte{'P', 'B', 1, 1})
	f.Add([]byte{'P', 'B', 1, 1, 0, 0, 24, 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, frame []byte) {
		if req, err := bin.DecodeRequest(frame); err == nil {
			// Round-trip property: whatever decoded must re-encode.
			if _, err := bin.EncodeRequest(req); err != nil {
				t.Fatalf("decoded request does not re-encode: %v", err)
			}
			releasePayload(req.Payload)
		}
		if resp, err := bin.DecodeResponse(frame); err == nil {
			if _, err := bin.EncodeResponse(resp); err != nil {
				t.Fatalf("decoded response does not re-encode: %v", err)
			}
		}
	})
}
