package wire_test

// Micro-benchmarks and allocation assertions for the binary fast-path
// codec versus gob on the two hottest messages (UploadChunk requests,
// DownloadResponse responses), plus the steady-state allocation contract
// the pooling work exists for: bin encode into a reused buffer allocates
// nothing, bin decode of an UploadChunk stays within 2 allocations
// (the *Request and the payload's interface box) once the vector pools
// are warm.
//
// TestBinBeatsGob is the bench-compare smoke CI runs: it fails the build
// if the hand-rolled codec is ever not faster than gob on the hot
// messages. It is gated behind PAPAYA_BENCH_COMPARE because comparative
// timing assertions are load-sensitive and do not belong in every local
// `go test` run.

import (
	"os"
	"testing"

	"repro/internal/server"
	"repro/internal/transport/wire"
)

// benchChunk builds a loadtest-shaped upload chunk: one 1024-element raw
// float chunk, the hottest payload on the serving path.
func benchChunk(n int) server.UploadChunk {
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(i) * 0.001
	}
	return server.UploadChunk{
		TaskID:      "default",
		SessionID:   42,
		Offset:      0,
		Data:        data,
		Done:        true,
		NumExamples: 8,
	}
}

func benchDownload(n int) server.DownloadResponse {
	params := make([]float32, n)
	for i := range params {
		params[i] = float32(i) * 0.01
	}
	return server.DownloadResponse{Params: params, Version: 9}
}

func benchCodecs(t testing.TB) map[string]wire.Codec {
	t.Helper()
	out := make(map[string]wire.Codec, 2)
	for _, name := range []string{"gob", "bin"} {
		c, err := wire.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = c
	}
	return out
}

func releasePayload(v any) {
	if lease, ok := v.(wire.BufferLease); ok {
		lease.ReleaseBinaryBuffers()
	}
}

func BenchmarkEncodeUploadChunk(b *testing.B) {
	req := &wire.Request{From: "client-7", Method: "upload-chunk", Payload: benchChunk(1024)}
	for name, codec := range benchCodecs(b) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.EncodeRequest(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeUploadChunk(b *testing.B) {
	req := &wire.Request{From: "client-7", Method: "upload-chunk", Payload: benchChunk(1024)}
	for name, codec := range benchCodecs(b) {
		frame, err := codec.EncodeRequest(req)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := codec.DecodeRequest(frame)
				if err != nil {
					b.Fatal(err)
				}
				releasePayload(out.Payload)
			}
		})
	}
}

func BenchmarkEncodeDownloadResponse(b *testing.B) {
	resp := &wire.Response{Payload: benchDownload(1024)}
	for name, codec := range benchCodecs(b) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.EncodeResponse(resp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeDownloadResponse(b *testing.B) {
	resp := &wire.Response{Payload: benchDownload(1024)}
	for name, codec := range benchCodecs(b) {
		frame, err := codec.EncodeResponse(resp)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.DecodeResponse(frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBinarySteadyStateAllocs pins the pooling contract: with a reused
// frame buffer, bin encodes the hot messages with zero allocations, and a
// bin UploadChunk decode costs at most 2 (the *Request and the payload's
// interface box) because the data vector is leased from vecpool and the
// identifier strings are interned.
func TestBinarySteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful without -race")
	}
	bin := wire.Binary{}
	req := &wire.Request{From: "client-7", Method: "upload-chunk", Payload: benchChunk(1024)}

	var buf []byte
	encAllocs := testing.AllocsPerRun(200, func() {
		out, err := bin.AppendRequest(buf[:0], req)
		if err != nil {
			t.Fatal(err)
		}
		buf = out
	})
	if encAllocs > 0 {
		t.Errorf("bin append-encode of UploadChunk allocates %.0f times per run, want 0", encAllocs)
	}

	frame, err := bin.EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	decAllocs := testing.AllocsPerRun(200, func() {
		out, err := bin.DecodeRequest(frame)
		if err != nil {
			t.Fatal(err)
		}
		// The transport's release step: the leased vector goes back to the
		// pool, which is what keeps the next decode allocation-free.
		releasePayload(out.Payload)
	})
	if decAllocs > 2 {
		t.Errorf("bin decode of UploadChunk allocates %.0f times per run, want <= 2", decAllocs)
	}

	resp := &wire.Response{Payload: benchDownload(1024)}
	respAllocs := testing.AllocsPerRun(200, func() {
		out, err := bin.AppendResponse(buf[:0], resp)
		if err != nil {
			t.Fatal(err)
		}
		buf = out
	})
	if respAllocs > 0 {
		t.Errorf("bin append-encode of DownloadResponse allocates %.0f times per run, want 0", respAllocs)
	}
}

// TestBinBeatsGob is the CI bench-compare gate: encode+decode of the two
// hot messages must be faster under bin than under gob, or the fast path
// has regressed into a slow path and the build fails.
func TestBinBeatsGob(t *testing.T) {
	if os.Getenv("PAPAYA_BENCH_COMPARE") == "" {
		t.Skip("set PAPAYA_BENCH_COMPARE=1 to run the codec bench-compare gate")
	}
	codecs := benchCodecs(t)
	measure := func(codec wire.Codec) float64 {
		req := &wire.Request{From: "client-7", Method: "upload-chunk", Payload: benchChunk(1024)}
		resp := &wire.Response{Payload: benchDownload(1024)}
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				frame, err := codec.EncodeRequest(req)
				if err != nil {
					b.Fatal(err)
				}
				out, err := codec.DecodeRequest(frame)
				if err != nil {
					b.Fatal(err)
				}
				releasePayload(out.Payload)
				rframe, err := codec.EncodeResponse(resp)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := codec.DecodeResponse(rframe); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp())
	}
	gobNs := measure(codecs["gob"])
	binNs := measure(codecs["bin"])
	t.Logf("hot-message encode+decode: gob %.0f ns/op, bin %.0f ns/op (%.1fx)", gobNs, binNs, gobNs/binNs)
	if binNs >= gobNs {
		t.Fatalf("bin (%.0f ns/op) is not faster than gob (%.0f ns/op)", binNs, gobNs)
	}
}

// TestBinaryColdMessagesRideGobFallback: a message without a hand-rolled
// form (TaskReport-bearing AggReport) still crosses the bin codec, via the
// in-frame gob envelope, and an unregistered type still refuses to encode.
func TestBinaryColdMessagesRideGobFallback(t *testing.T) {
	bin := wire.Binary{}
	in := server.AggDirective{DropTasks: []string{"a", "b"}}
	frame, err := bin.EncodeRequest(&wire.Request{From: "agg-0", Method: "agg-report", Payload: in})
	if err != nil {
		t.Fatal(err)
	}
	req, err := bin.DecodeRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := req.Payload.(server.AggDirective)
	if !ok || len(out.DropTasks) != 2 || out.DropTasks[0] != "a" {
		t.Fatalf("gob-fallback payload mangled: %#v", req.Payload)
	}

	type notRegistered struct{ X int }
	if _, err := bin.EncodeRequest(&wire.Request{Payload: notRegistered{X: 1}}); err == nil {
		t.Fatal("unregistered type encoded through the bin fallback")
	}
}

// TestBinaryRejectsHostileFrames: truncated and length-lying frames must
// error without panicking or allocating the declared size.
func TestBinaryRejectsHostileFrames(t *testing.T) {
	bin := wire.Binary{}
	valid, err := bin.EncodeRequest(&wire.Request{From: "c", Method: "upload-chunk", Payload: benchChunk(64)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(valid); i++ {
		if _, err := bin.DecodeRequest(valid[:i]); err == nil {
			t.Fatalf("truncated frame of %d/%d bytes decoded", i, len(valid))
		}
	}

	hostile := [][]byte{
		nil,
		[]byte("PB"),
		{'P', 'B', 99, 1}, // future version
		{'P', 'B', 1, 7},  // unknown frame kind
		{'P', 'B', 1, 1, 0xff, 0xff, 0xff, 0xff, 0x7f},      // absurd string length
		append([]byte{'P', 'B', 1, 1, 1, 'c', 1, 'm'}, 200), // unregistered message ID
	}
	// A frame whose vector declares far more elements than the body holds.
	lying := append([]byte{'P', 'B', 1, 1, 1, 'c', 1, 'm', 24, 1, 'x', 1, 0, 0, 2 /* flags: data */}, 0xff, 0xff, 0xff, 0x7f)
	hostile = append(hostile, lying)
	for i, frame := range hostile {
		if _, err := bin.DecodeRequest(frame); err == nil {
			t.Fatalf("hostile frame %d decoded: %x", i, frame)
		}
	}
}

// TestBinaryNestedRouteStaysBinary: the selector route envelope around an
// UploadChunk — the actual client wire shape — round-trips with the inner
// concrete type intact.
func TestBinaryNestedRouteStaysBinary(t *testing.T) {
	bin := wire.Binary{}
	in := server.RouteRequest{
		TaskID: "default", Method: "upload-chunk", Payload: benchChunk(128),
	}
	frame, err := bin.EncodeRequest(&wire.Request{From: "client-1", Method: "route", Payload: in})
	if err != nil {
		t.Fatal(err)
	}
	req, err := bin.DecodeRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := req.Payload.(server.RouteRequest)
	if !ok {
		t.Fatalf("outer payload type %T", req.Payload)
	}
	chunk, ok := rr.Payload.(server.UploadChunk)
	if !ok {
		t.Fatalf("inner payload type %T", rr.Payload)
	}
	if len(chunk.Data) != 128 || !chunk.Done || chunk.TaskID != "default" {
		t.Fatalf("inner chunk mangled: %d elems done=%v", len(chunk.Data), chunk.Done)
	}
	releasePayload(req.Payload)
}
