//go:build race

package wire_test

// raceEnabled reports whether this test binary was built with -race, whose
// instrumentation adds allocations that make AllocsPerRun assertions
// meaningless.
const raceEnabled = true
