// Stream framing for the streaming session fabric. PR 4 left net/http
// request/response traversal as the single-core bottleneck (~1.4ms of the
// ~1.6ms per session on the loopback loadtest): every chunk of every upload
// paid a full POST round trip. PAPAYA's client<->aggregator session is a
// long-lived stream (Huba et al., MLSys 2022, Section 6.1's virtual
// session), so the streaming capability lets a client open ONE connection
// per session and pipeline check-in -> join -> chunked upload -> report
// over it as length-prefixed frames.
//
// A stream frame is:
//
//	uvarint(1 + len(payload)) | flags byte | payload bytes
//
// where payload is one complete codec frame (a gob "PW", binary "PB", or
// JSON request/response — self-describing, see CodecForFrame) and flags
// carries per-frame options (today only StreamFlagDeflate). The framing is
// shared by both streaming backends: the HTTP transport's /papaya/v2/stream
// route frames its long-lived POST bodies with it, and the raw-TCP fabric
// (internal/transport/tcptransport) frames everything with it, prefixed by
// one StreamHello naming the target node.
//
// Like bin and deflate, streaming is a negotiated /v2/ capability
// (versioning rule 4): Capabilities.Stream advertises it, and a caller
// streams only toward peers that advertised it. A /v1/ peer keeps receiving
// exactly the per-POST bytes it always did.

package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// StreamFlagDeflate marks a stream frame whose payload bytes are
// DEFLATE-compressed (the transport inflates before decoding; the same
// >=256-byte threshold as the per-POST /v2/ deflate stage applies on
// encode).
const StreamFlagDeflate = 1 << 0

// StreamFlagNoAck marks a request frame whose sender does not wait for a
// response: the server answers it only when the call fails (and then on the
// next acknowledged frame, keeping request/response framing in sync). It is
// the ack-elision half of the streaming v2 capability
// (Capabilities.AckElide, versioning rule 4): a sender uses it only toward
// peers that advertised the capability, so peers that would reject the
// unknown flag bit never see it.
const StreamFlagNoAck = 1 << 1

// streamKnownFlags masks the flag bits this build understands; a frame
// carrying unknown flags is rejected (versioning rule 1 — fail loudly
// instead of misinterpreting a future format).
const streamKnownFlags = StreamFlagDeflate | StreamFlagNoAck

// AppendStreamFrame appends one length-prefixed stream frame carrying
// payload with the given flags. The payload is copied; callers reuse their
// encode scratch across frames.
func AppendStreamFrame(dst []byte, flags byte, payload []byte) []byte {
	dst = AppendUvarint(dst, uint64(1+len(payload)))
	dst = append(dst, flags)
	return append(dst, payload...)
}

// ReadStreamFrame parses one stream frame from the front of b, returning
// the flags, the payload (aliasing b), and the remaining bytes. max bounds
// the declared payload length so a hostile length prefix cannot buy a huge
// read downstream.
func ReadStreamFrame(b []byte, max int) (flags byte, payload, rest []byte, err error) {
	n64, rest, err := ReadUvarint(b)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("wire: stream frame length: %w", err)
	}
	if n64 == 0 {
		return 0, nil, nil, errors.New("wire: empty stream frame")
	}
	if n64 > uint64(max)+1 {
		return 0, nil, nil, fmt.Errorf("wire: stream frame of %d bytes exceeds limit %d", n64-1, max)
	}
	if n64 > uint64(len(rest)) {
		return 0, nil, nil, errors.New("wire: stream frame length exceeds input")
	}
	n := int(n64)
	flags = rest[0]
	if flags&^byte(streamKnownFlags) != 0 {
		return 0, nil, nil, fmt.Errorf("wire: unknown stream frame flags %#x", flags)
	}
	return flags, rest[1:n], rest[n:], nil
}

// ReadStreamFrameFrom reads one stream frame from br into scratch (growing
// it as needed) and returns the flags, the payload (aliasing the returned
// scratch), and the possibly-grown scratch for the caller to reuse on the
// next read — the zero-allocation steady state of a pipelined session. max
// bounds the declared payload length. io.EOF before the first byte is a
// clean end of stream; a partial frame surfaces as io.ErrUnexpectedEOF.
func ReadStreamFrameFrom(br *bufio.Reader, scratch []byte, max int) (flags byte, payload, newScratch []byte, err error) {
	n64, err := readUvarintFrom(br)
	if err != nil {
		return 0, nil, scratch, err
	}
	if n64 == 0 {
		return 0, nil, scratch, errors.New("wire: empty stream frame")
	}
	if n64 > uint64(max)+1 {
		return 0, nil, scratch, fmt.Errorf("wire: stream frame of %d bytes exceeds limit %d", n64-1, max)
	}
	n := int(n64)
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(br, scratch); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, scratch, fmt.Errorf("wire: stream frame body: %w", err)
	}
	flags = scratch[0]
	if flags&^byte(streamKnownFlags) != 0 {
		return 0, nil, scratch, fmt.Errorf("wire: unknown stream frame flags %#x", flags)
	}
	return flags, scratch[1:n], scratch, nil
}

// readUvarintFrom reads a uvarint byte by byte, mapping a truncated varint
// after at least one byte to io.ErrUnexpectedEOF (a dead peer mid-frame)
// while letting a clean io.EOF before any byte mean end of stream.
func readUvarintFrom(br *bufio.Reader) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if shift >= 64 || (shift == 63 && b > 1) {
			return 0, errors.New("wire: stream frame length varint overflows")
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
	}
}

// CodecForFrame sniffs which wire codec produced a frame from its leading
// bytes ("PB" binary, "PW" gob, '{' JSON) so a streaming server decodes
// whatever codec each frame arrived in and answers in kind — the same rule
// handleRPC applies via Content-Type, carried in-band because a stream has
// no per-call headers.
func CodecForFrame(b []byte) (Codec, bool) {
	if len(b) >= 2 && b[0] == 'P' {
		switch b[1] {
		case 'B':
			return Binary{}, true
		case 'W':
			return Gob{}, true
		}
	}
	if len(b) >= 1 && b[0] == '{' {
		return JSON{}, true
	}
	return nil, false
}

// Stream hello: the first frame on a raw-TCP stream names the node every
// subsequent request on the connection is addressed to (the HTTP streaming
// route carries the node in the URL path instead). The hello payload is
// "PSH" + Version + length-prefixed node name.
var streamHelloMagic = []byte{'P', 'S', 'H', Version}

// AppendStreamHello appends a hello payload opening a stream to node.
// Callers wrap it in a stream frame like any other payload.
func AppendStreamHello(dst []byte, node string) []byte {
	dst = append(dst, streamHelloMagic...)
	return AppendString(dst, node)
}

// ParseStreamHello parses a hello payload back into the target node name.
func ParseStreamHello(b []byte) (string, error) {
	if len(b) < len(streamHelloMagic) || b[0] != 'P' || b[1] != 'S' || b[2] != 'H' {
		return "", errors.New("wire: not a stream hello")
	}
	if b[3] != Version {
		return "", fmt.Errorf("wire: stream hello version %d, this build speaks %d", b[3], Version)
	}
	node, rest, err := ReadString(b[len(streamHelloMagic):])
	if err != nil {
		return "", err
	}
	if len(rest) != 0 {
		return "", errors.New("wire: trailing bytes after stream hello")
	}
	return node, nil
}
