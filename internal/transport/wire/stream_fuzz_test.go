package wire_test

// Fuzz coverage for the stream framing, mirroring FuzzBinaryDecode:
// stream frames arrive from unauthenticated network peers ahead of any
// codec validation, so truncated, length-lying, flag-corrupted, and
// bit-flipped frame sequences must produce errors or clean parses — never
// panics or unbounded allocations. The harness walks a whole input as a
// pipelined sequence (the transport's actual read loop), re-frames every
// payload it accepts, and checks the reconstruction is byte-faithful.

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"repro/internal/transport/wire"
)

func FuzzStreamDecode(f *testing.F) {
	// Seed with realistic sequences: a hello followed by codec frames of
	// every shape, deflate-flagged frames, and deliberately broken ones.
	bin := wire.Binary{}
	reqFrame, err := bin.EncodeRequest(&wire.Request{From: "client-1", Method: "upload-chunk", Payload: benchChunk(16)})
	if err != nil {
		f.Fatal(err)
	}
	respFrame, err := bin.EncodeResponse(&wire.Response{Payload: benchDownload(8)})
	if err != nil {
		f.Fatal(err)
	}
	seq := wire.AppendStreamFrame(nil, 0, wire.AppendStreamHello(nil, "agg-0"))
	seq = wire.AppendStreamFrame(seq, 0, reqFrame)
	seq = wire.AppendStreamFrame(seq, wire.StreamFlagDeflate, respFrame)
	f.Add(seq)
	// A coalesced no-ack chunk train as the writev path produces it: several
	// NoAck frames back to back in one buffer, a deflated one among them,
	// closed by the acked frame that flushes the batch.
	batch := wire.AppendStreamFrame(nil, wire.StreamFlagNoAck, reqFrame)
	batch = wire.AppendStreamFrame(batch, wire.StreamFlagNoAck, reqFrame)
	batch = wire.AppendStreamFrame(batch, wire.StreamFlagNoAck|wire.StreamFlagDeflate, respFrame)
	batch = wire.AppendStreamFrame(batch, 0, reqFrame)
	f.Add(batch)
	f.Add(wire.AppendStreamFrame(nil, wire.StreamFlagNoAck, []byte("{}")))
	f.Add(wire.AppendStreamFrame(nil, 0, []byte("{}")))
	f.Add(wire.AppendUvarint(nil, 1<<40))                 // length bomb
	f.Add([]byte{0x80, 0x80, 0x80})                       // truncated varint
	f.Add(append(wire.AppendUvarint(nil, 3), 0xFF, 1, 2)) // unknown flags

	const maxFrame = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		// The in-memory reader and the io.Reader-based one must agree on
		// every frame they accept.
		br := bufio.NewReader(bytes.NewReader(data))
		rest := data
		var scratch []byte
		for {
			flags, payload, r, err := wire.ReadStreamFrame(rest, maxFrame)
			sFlags, sPayload, sc, sErr := wire.ReadStreamFrameFrom(br, scratch, maxFrame)
			scratch = sc
			if (err == nil) != (sErr == nil) {
				// The only tolerated divergence: the slice reader sees a
				// too-short declared length immediately, the stream reader
				// reports it as an unexpected EOF mid-body. Both reject.
				if err == nil || sErr == nil {
					t.Fatalf("readers disagree: slice err=%v stream err=%v", err, sErr)
				}
			}
			if err != nil {
				break
			}
			if flags != sFlags || !bytes.Equal(payload, sPayload) {
				t.Fatalf("readers disagree on frame content")
			}
			// Round-trip property: an accepted frame re-frames to a frame
			// that parses back identically. (Byte equality would be too
			// strict — uvarint length prefixes are not canonical.)
			reframed := wire.AppendStreamFrame(nil, flags, payload)
			rFlags, rPayload, rRest, rErr := wire.ReadStreamFrame(reframed, maxFrame)
			if rErr != nil || rFlags != flags || !bytes.Equal(rPayload, payload) || len(rRest) != 0 {
				t.Fatalf("re-framed frame diverges: %v", rErr)
			}
			// A payload that parses as a hello must re-encode faithfully.
			if node, err := wire.ParseStreamHello(payload); err == nil {
				if !bytes.Equal(wire.AppendStreamHello(nil, node), payload) {
					t.Fatalf("hello round-trip diverges for %q", node)
				}
			}
			rest = r
		}
		// Drain the stream reader to its own terminal state; it must not
		// panic regardless of where the slice reader stopped.
		for {
			var err error
			_, _, scratch, err = wire.ReadStreamFrameFrom(br, scratch, maxFrame)
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF {
					_ = err // any error is fine; only panics/hangs are bugs
				}
				break
			}
		}
	})
}
