package wire_test

// Round-trip and bound tests for the stream framing, plus an allocation
// check on the reader's steady state (a pipelined session must not
// allocate per frame once its scratch is warm).

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"repro/internal/transport/wire"
)

func TestStreamFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("x"),
		[]byte("hello stream"),
		bytes.Repeat([]byte("abcd"), 4096),
		{},
	}
	var buf []byte
	for i, p := range payloads {
		flags := byte(0)
		if i%2 == 1 {
			flags = wire.StreamFlagDeflate
		}
		buf = wire.AppendStreamFrame(buf, flags, p)
	}
	// In-memory reader.
	rest := buf
	for i, p := range payloads {
		flags, payload, r, err := wire.ReadStreamFrame(rest, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		wantFlags := byte(0)
		if i%2 == 1 {
			wantFlags = wire.StreamFlagDeflate
		}
		if flags != wantFlags || !bytes.Equal(payload, p) {
			t.Fatalf("frame %d: flags=%d payload %d bytes", i, flags, len(payload))
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	// Streaming reader.
	br := bufio.NewReader(bytes.NewReader(buf))
	var scratch []byte
	for i, p := range payloads {
		var payload []byte
		var err error
		_, payload, scratch, err = wire.ReadStreamFrameFrom(br, scratch, 1<<20)
		if err != nil {
			t.Fatalf("streamed frame %d: %v", i, err)
		}
		if !bytes.Equal(payload, p) {
			t.Fatalf("streamed frame %d mismatch", i)
		}
	}
	if _, _, _, err := wire.ReadStreamFrameFrom(br, scratch, 1<<20); err != io.EOF {
		t.Fatalf("end of stream error = %v, want io.EOF", err)
	}
}

func TestStreamFrameBounds(t *testing.T) {
	// A declared length beyond max must be rejected before any read.
	huge := wire.AppendUvarint(nil, 1<<40)
	if _, _, _, err := wire.ReadStreamFrame(huge, 1<<20); err == nil {
		t.Fatal("oversized declared length accepted")
	}
	br := bufio.NewReader(bytes.NewReader(huge))
	if _, _, _, err := wire.ReadStreamFrameFrom(br, nil, 1<<20); err == nil {
		t.Fatal("oversized declared length accepted by reader")
	}
	// Truncated mid-frame: io.ErrUnexpectedEOF, not a clean EOF.
	frame := wire.AppendStreamFrame(nil, 0, []byte("truncate me"))
	br = bufio.NewReader(bytes.NewReader(frame[:len(frame)-3]))
	if _, _, _, err := wire.ReadStreamFrameFrom(br, nil, 1<<20); err == nil || err == io.EOF {
		t.Fatalf("truncated frame error = %v", err)
	}
	// Unknown flag bits are a version break, rejected loudly.
	bad := wire.AppendUvarint(nil, 2)
	bad = append(bad, 0x80, 'x')
	if _, _, _, err := wire.ReadStreamFrame(bad, 1<<20); err == nil {
		t.Fatal("unknown flags accepted")
	}
	// Empty frame (no flags byte) is malformed.
	if _, _, _, err := wire.ReadStreamFrame(wire.AppendUvarint(nil, 0), 1<<20); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestStreamHelloRoundTrip(t *testing.T) {
	for _, node := range []string{"agg-0", "selector-a", "_fabric", ""} {
		hello := wire.AppendStreamHello(nil, node)
		got, err := wire.ParseStreamHello(hello)
		if err != nil {
			t.Fatalf("%q: %v", node, err)
		}
		if got != node {
			t.Fatalf("hello round-trip %q -> %q", node, got)
		}
	}
	if _, err := wire.ParseStreamHello([]byte("PSH")); err == nil {
		t.Fatal("truncated hello accepted")
	}
	if _, err := wire.ParseStreamHello(append(wire.AppendStreamHello(nil, "n"), 'x')); err == nil {
		t.Fatal("trailing bytes after hello accepted")
	}
}

func TestCodecForFrame(t *testing.T) {
	req := &wire.Request{From: "c", Method: "m", Payload: "p"}
	for _, codec := range []wire.Codec{wire.Gob{}, wire.Binary{}, wire.JSON{}} {
		frame, err := codec.EncodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := wire.CodecForFrame(frame)
		if !ok || got.Name() != codec.Name() {
			t.Fatalf("sniffed %v for %s frame", got, codec.Name())
		}
	}
	if _, ok := wire.CodecForFrame([]byte{0xff, 0xfe}); ok {
		t.Fatal("garbage sniffed as a codec")
	}
}

// TestStreamReaderSteadyStateAllocs: once the scratch buffer has grown to
// frame size, reading a pipelined sequence of frames allocates nothing.
func TestStreamReaderSteadyStateAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte("p"), 4096)
	frame := wire.AppendStreamFrame(nil, 0, payload)
	many := bytes.Repeat(frame, 64)
	reader := bytes.NewReader(many)
	br := bufio.NewReaderSize(reader, 32<<10)
	scratch := make([]byte, 0, 8192)
	allocs := testing.AllocsPerRun(32, func() {
		reader.Seek(0, io.SeekStart)
		br.Reset(reader)
		for {
			var err error
			_, _, scratch, err = wire.ReadStreamFrameFrom(br, scratch, 1<<20)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state stream read costs %.1f allocs per 64 frames, want 0", allocs)
	}
}
