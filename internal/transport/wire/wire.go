// Package wire is the versioned message codec the networked transport
// backends use. The in-memory transport.Network passes payloads between
// goroutines as plain `any` values; crossing a process boundary instead
// forces an explicit wire format: every message type that may appear as a
// call payload or response is registered here under a stable name, and the
// two codecs (gob for the production path, JSON for debugging and non-Go
// tooling) frame it in a versioned envelope.
//
// # Versioning rules
//
//  1. Every frame starts with the envelope version (Version). A decoder
//     rejects frames whose version it does not know — mixed-version fleets
//     fail loudly at the transport instead of corrupting task state.
//  2. Registered names are namespaced "papaya/v1/...". Adding a field to a
//     message is compatible (both codecs default missing fields to their
//     zero values). Removing or renaming a field, or changing its type, is
//     not: register the changed message under a new "/v2/" name and keep
//     serving the old one for the deprecation window.
//  3. Handlers must treat zero values as "absent": empty slices and maps
//     may decode as nil.
//  4. New transport behaviour (anything beyond "decode the frame the same
//     way") ships as a *capability* on a new route generation, never as a
//     change to an existing route: peers advertise a Capabilities document
//     at discovery, and a caller uses a /v2/ behaviour only toward peers
//     that advertised it. A peer that advertises nothing is a /v1/ peer
//     and keeps receiving exactly the v1 bytes. Wire compression
//     (internal/compress) is the first such capability; see
//     docs/DEPLOYMENT.md "Wire compression".
//
// The registry is populated by the packages that own the messages
// (internal/server registers the Section 4/6 control-plane payloads at init
// time), so the set of types that can cross the network is explicit and
// testable: see Names and NewValue.
package wire

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// Version is the envelope version emitted by both codecs. Decoders reject
// any other value (versioning rule 1).
const Version = 1

// API generations of the HTTP transport surface (versioning rule 4). A
// build always serves every generation it knows; the generation used
// toward a peer is the highest one that peer advertised.
const (
	// APIv1 is the baseline RPC surface: POST /papaya/v1/rpc/<node> with
	// an uncompressed versioned frame.
	APIv1 = 1
	// APIv2 adds the negotiated-capability surface: POST /papaya/v2/rpc/<node>
	// may carry a DEFLATE-compressed frame body (Content-Encoding:
	// deflate), upload payloads may use internal/compress codecs, and —
	// when the peer also advertised the "bin" wire codec — frames may use
	// the Binary fast path instead of gob. Peers that additionally
	// advertised Capabilities.Stream accept streaming sessions on
	// /papaya/v2/stream (see stream.go).
	APIv2 = 2
)

// Capabilities is the capability half of a discovery document: which API
// generation a peer speaks and which compression codecs it can decode.
// Absent fields (a /v1/ peer's document) mean "baseline only" — JSON zero
// values are the backward-compatibility mechanism, per versioning rule 3.
type Capabilities struct {
	// API is the highest transport API generation the peer serves; 0 or
	// absent means APIv1.
	API int `json:"api,omitempty"`
	// Compress lists the compress.Codec names the peer can decode; absent
	// means none (raw payloads only).
	Compress []string `json:"compress,omitempty"`
	// Codecs lists the wire codec names the peer can decode beyond the
	// universal gob/json baseline (today: "bin", the binary fast path).
	// Absent (a /v1/ peer's document, or a pre-bin build) means baseline
	// only — such peers keep receiving gob frames.
	Codecs []string `json:"codecs,omitempty"`
	// Stream reports that the peer serves streaming sessions: one
	// long-lived connection carrying length-prefixed frames (the HTTP
	// transport's /papaya/v2/stream route; the raw-TCP fabric is streaming
	// by construction). Absent means per-call RPC only — callers keep
	// sending the per-POST bytes such peers always received.
	Stream bool `json:"stream,omitempty"`
	// Trace reports that the peer understands cross-tier session trace
	// IDs (internal/obs): it records spans for the TraceID field on the
	// session-control messages and echoes the ID at check-in. The field
	// is cold (one uint64 on control messages, zero on the chunk path),
	// so traced builds always send it; a /v1 peer's decoder drops the
	// unknown field and the session degrades to untraced (versioning
	// rule 2), which this flag makes visible at discovery.
	Trace bool `json:"trace,omitempty"`
	// AckElide reports that the peer's streaming server understands
	// StreamFlagNoAck frames: pipelined calls marked no-ack ride the
	// stream unanswered (the server replies only on failure, carried on
	// the next acknowledged frame). Absent means every streamed call is
	// acknowledged — senders keep the per-frame request/response rhythm
	// such peers always saw.
	AckElide bool `json:"ack_elide,omitempty"`
}

// SupportsCompression reports whether the peer can receive
// compression-capability traffic: the /v2/ route plus compress codecs.
func (c Capabilities) SupportsCompression() bool { return c.API >= APIv2 }

// SupportsBinary reports whether the peer advertised the binary fast-path
// wire codec ("bin") on the /v2/ route. Callers fall back to gob when it
// returns false — the negotiation default that keeps /v1/ peers receiving
// exactly the bytes they always did.
func (c Capabilities) SupportsBinary() bool {
	if c.API < APIv2 {
		return false
	}
	for _, name := range c.Codecs {
		if name == "bin" {
			return true
		}
	}
	return false
}

// SupportsStream reports whether the peer advertised the streaming-session
// capability on the /v2/ route. Callers fall back to one-call-per-POST when
// it returns false — the negotiation default that keeps /v1/ peers
// receiving exactly the traffic they always did.
func (c Capabilities) SupportsStream() bool { return c.API >= APIv2 && c.Stream }

// SupportsAckElide reports whether the peer's streaming server accepts
// no-ack frames (StreamFlagNoAck). It implies SupportsStream; callers fall
// back to per-frame acknowledgements when it returns false, so peers that
// would reject the unknown flag bit never receive it.
func (c Capabilities) SupportsAckElide() bool {
	return c.API >= APIv2 && c.Stream && c.AckElide
}

// SupportsTrace reports whether the peer advertised cross-tier session
// tracing on the /v2/ route. Untraced peers still decode traced frames
// (the TraceID field is cold and zero-defaulted, versioning rule 2) —
// they just record no spans, so sessions through them degrade to
// untraced rather than failing.
func (c Capabilities) SupportsTrace() bool { return c.API >= APIv2 && c.Trace }

// DecodableCodecs returns the wire codec names every build of this package
// can decode — the codec half of the capability document a fabric
// advertises at discovery.
func DecodableCodecs() []string { return []string{"bin", "gob", "json"} }

// Request is one RPC crossing the fabric: who is calling, which method, and
// the registered payload message.
type Request struct {
	From    string
	Method  string
	Payload any
}

// Response is the other half: either a payload or an error. Kind carries
// the transport-level error class so fault semantics (ErrCrashed,
// ErrDropped, ...) survive serialization; see httptransport.
type Response struct {
	Payload any
	Err     string
	Kind    string
}

// Codec frames requests and responses for one wire format.
type Codec interface {
	// Name identifies the codec ("gob" or "json").
	Name() string
	// ContentType is the HTTP content type the codec ships under.
	ContentType() string
	// EncodeRequest serializes a request into a versioned frame.
	EncodeRequest(r *Request) ([]byte, error)
	// DecodeRequest parses a versioned frame back into a request.
	DecodeRequest(b []byte) (*Request, error)
	// EncodeResponse serializes a response into a versioned frame.
	EncodeResponse(r *Response) ([]byte, error)
	// DecodeResponse parses a versioned frame back into a response.
	DecodeResponse(b []byte) (*Response, error)
}

// ByName returns the codec for a -codec flag value.
func ByName(name string) (Codec, error) {
	switch name {
	case "gob":
		return Gob{}, nil
	case "json":
		return JSON{}, nil
	case "bin":
		return Binary{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown codec %q (want gob|json|bin)", name)
	}
}

// ByContentType returns the codec that ships under the given HTTP content
// type. The HTTP transport uses it to decode whatever codec a negotiated
// peer chose per call, instead of assuming its own preference.
func ByContentType(ct string) (Codec, bool) {
	switch ct {
	case Gob{}.ContentType():
		return Gob{}, true
	case JSON{}.ContentType():
		return JSON{}, true
	case Binary{}.ContentType():
		return Binary{}, true
	}
	return nil, false
}

// --- registry ---

var (
	regMu      sync.RWMutex
	nameToType = make(map[string]reflect.Type)
	typeToName = make(map[reflect.Type]string)
)

// Register records a message type under a stable wire name and registers it
// with gob so it can travel inside interface-typed fields. sample is a zero
// value of the concrete type (not a pointer). Registering the same pair
// twice is a no-op; re-registering a name for a different type panics, as
// does reusing a type under a second name — both are wire-format bugs.
func Register(name string, sample any) {
	t := reflect.TypeOf(sample)
	if t == nil {
		panic("wire: cannot register nil")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := nameToType[name]; ok {
		if prev != t {
			panic(fmt.Sprintf("wire: name %q already registered for %v", name, prev))
		}
		return
	}
	if prev, ok := typeToName[t]; ok {
		panic(fmt.Sprintf("wire: type %v already registered as %q", t, prev))
	}
	nameToType[name] = t
	typeToName[t] = name
	// gob predefines the unnamed primitives (string, bool, ints, floats)
	// for interface transmission under their own names; re-registering them
	// panics. The registry entry above still gives them a stable JSON name.
	if t.PkgPath() != "" || t.Kind() == reflect.Struct || t.Kind() == reflect.Slice ||
		t.Kind() == reflect.Map || t.Kind() == reflect.Ptr || t.Kind() == reflect.Array {
		gob.RegisterName(name, sample)
	}
}

// Names returns every registered wire name, sorted — the explicit set of
// messages that may cross the network (round-trip tests enumerate it).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(nameToType))
	for name := range nameToType {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewValue returns a new zero value of the type registered under name.
func NewValue(name string) (any, error) {
	regMu.RLock()
	t, ok := nameToType[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: unregistered message type %q", name)
	}
	return reflect.New(t).Elem().Interface(), nil
}

func lookupName(v any) (string, error) {
	regMu.RLock()
	name, ok := typeToName[reflect.TypeOf(v)]
	regMu.RUnlock()
	if !ok {
		return "", fmt.Errorf("wire: message type %T is not registered", v)
	}
	return name, nil
}

// MarshalAny encodes an interface-typed value as a self-describing JSON
// object {"type": name, "body": ...}; nil encodes as JSON null. Messages
// with `any` fields (server.RouteRequest's forwarded payload) use it to
// keep the JSON codec type-faithful end to end.
func MarshalAny(v any) ([]byte, error) {
	if v == nil {
		return []byte("null"), nil
	}
	name, err := lookupName(v)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(struct {
		Type string          `json:"type"`
		Body json.RawMessage `json:"body"`
	}{Type: name, Body: body})
}

// UnmarshalAny reverses MarshalAny, reconstructing the registered concrete
// type.
func UnmarshalAny(b []byte) (any, error) {
	if len(b) == 0 || bytes.Equal(b, []byte("null")) {
		return nil, nil
	}
	var env struct {
		Type string          `json:"type"`
		Body json.RawMessage `json:"body"`
	}
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, err
	}
	regMu.RLock()
	t, ok := nameToType[env.Type]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: unregistered message type %q", env.Type)
	}
	p := reflect.New(t)
	if err := json.Unmarshal(env.Body, p.Interface()); err != nil {
		return nil, err
	}
	return p.Elem().Interface(), nil
}

// --- gob codec ---

// Gob is the production codec: a 3-byte header ("PW" + version) followed by
// a gob stream. Payloads travel as interface values, so only registered
// messages encode.
type Gob struct{}

var gobHeader = []byte{'P', 'W', Version}

// Name implements Codec.
func (Gob) Name() string { return "gob" }

// ContentType implements Codec.
func (Gob) ContentType() string { return "application/x-papaya-gob" }

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(gobHeader)
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(b []byte, into any) error {
	if len(b) < len(gobHeader) || b[0] != 'P' || b[1] != 'W' {
		return errors.New("wire: not a papaya gob frame")
	}
	if b[2] != Version {
		return fmt.Errorf("wire: envelope version %d, this build speaks %d", b[2], Version)
	}
	return gob.NewDecoder(bytes.NewReader(b[len(gobHeader):])).Decode(into)
}

// EncodeRequest implements Codec.
func (Gob) EncodeRequest(r *Request) ([]byte, error) { return gobEncode(r) }

// DecodeRequest implements Codec.
func (Gob) DecodeRequest(b []byte) (*Request, error) {
	var r Request
	if err := gobDecode(b, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// EncodeResponse implements Codec.
func (Gob) EncodeResponse(r *Response) ([]byte, error) { return gobEncode(r) }

// DecodeResponse implements Codec.
func (Gob) DecodeResponse(b []byte) (*Response, error) {
	var r Response
	if err := gobDecode(b, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// --- JSON codec ---

// JSON is the debug/interop codec: the same envelope as Gob but as a JSON
// object with a self-describing payload, so any HTTP client can speak to a
// papaya server and humans can read captures. Slower and wider than gob;
// the deployment guide recommends it only for inspection.
type JSON struct{}

// Name implements Codec.
func (JSON) Name() string { return "json" }

// ContentType implements Codec.
func (JSON) ContentType() string { return "application/json" }

type jsonFrame struct {
	V       int             `json:"v"`
	From    string          `json:"from,omitempty"`
	Method  string          `json:"method,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Err     string          `json:"err,omitempty"`
	Kind    string          `json:"kind,omitempty"`
}

func (f *jsonFrame) checkVersion() error {
	if f.V != Version {
		return fmt.Errorf("wire: envelope version %d, this build speaks %d", f.V, Version)
	}
	return nil
}

// EncodeRequest implements Codec.
func (JSON) EncodeRequest(r *Request) ([]byte, error) {
	payload, err := MarshalAny(r.Payload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jsonFrame{V: Version, From: r.From, Method: r.Method, Payload: payload})
}

// DecodeRequest implements Codec.
func (JSON) DecodeRequest(b []byte) (*Request, error) {
	var f jsonFrame
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, err
	}
	if err := f.checkVersion(); err != nil {
		return nil, err
	}
	payload, err := UnmarshalAny(f.Payload)
	if err != nil {
		return nil, err
	}
	return &Request{From: f.From, Method: f.Method, Payload: payload}, nil
}

// EncodeResponse implements Codec.
func (JSON) EncodeResponse(r *Response) ([]byte, error) {
	payload, err := MarshalAny(r.Payload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jsonFrame{V: Version, Payload: payload, Err: r.Err, Kind: r.Kind})
}

// DecodeResponse implements Codec.
func (JSON) DecodeResponse(b []byte) (*Response, error) {
	var f jsonFrame
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, err
	}
	if err := f.checkVersion(); err != nil {
		return nil, err
	}
	payload, err := UnmarshalAny(f.Payload)
	if err != nil {
		return nil, err
	}
	return &Response{Payload: payload, Err: f.Err, Kind: f.Kind}, nil
}
