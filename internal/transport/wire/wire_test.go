package wire_test

import (
	"crypto/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/secagg"
	"repro/internal/server"
	"repro/internal/tee"
	"repro/internal/transport/wire"
)

// secaggWorld builds a live deployment so samples carry real crypto
// material (bundle, trust, masked shares), not synthetic bytes.
type secaggWorld struct {
	dep    *secagg.Deployment
	trust  secagg.ClientTrust
	bundle secagg.InitialBundle
	upload secagg.Upload
}

func newSecaggWorld(t *testing.T) *secaggWorld {
	t.Helper()
	params := secagg.Params{VecLen: 6, Threshold: 2, Scale: 1 << 16}
	dep, err := secagg.NewDeployment(params, []byte("tsa"), tee.DefaultCostModel(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bundles, err := dep.FetchInitialBundles(1)
	if err != nil {
		t.Fatal(err)
	}
	trust := dep.ClientTrust()
	sess, err := secagg.NewClientSession(trust, bundles[0], rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	up, err := sess.MaskUpdate([]float32{0.5, -0.25, 1, 0, 2, -3}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &secaggWorld{dep: dep, trust: trust, bundle: bundles[0], upload: up}
}

// samples returns one populated value per registered wire name. The test
// below fails if a registered message has no sample (or vice versa), so
// adding a wire message forces adding its round-trip coverage here.
func samples(t *testing.T, w *secaggWorld) map[string]any {
	t.Helper()
	spec := server.TaskSpec{
		ID: "wt", Mode: core.Async, NumParams: 4, Concurrency: 8,
		AggregationGoal: 2, MaxStaleness: 3, Capability: "lm",
		InitParams: []float32{1, 2, 3, 4}, AggShards: 2, UploadChunkSize: 2,
		DP: &dp.Config{Clip: 1, NoiseMultiplier: 2, Delta: 1e-6, EpsilonBudget: 5},
	}
	secSpec := spec
	secSpec.ID = "wt-sec"
	secSpec.SecAgg = w.dep

	return map[string]any{
		"papaya/v1/string": "aggregator-a",
		"papaya/v1/bool":   true,

		"papaya/v1/server.TaskSpec":   secSpec,
		"papaya/v1/server.Assignment": server.Assignment{TaskID: "wt", Aggregator: "agg-0", Seq: 4},
		"papaya/v1/server.AggReport": server.AggReport{
			Aggregator: "agg-0",
			Tasks: map[string]server.TaskReport{
				"wt": {Spec: spec, Seq: 4, ActiveClients: 2, Demand: 6, Version: 9,
					Updates: 31, Checkpoint: []float32{4, 3, 2, 1}},
			},
		},
		"papaya/v1/server.AggDirective": server.AggDirective{DropTasks: []string{"stale-1", "stale-2"}},
		"papaya/v1/server.AssignTaskRequest": server.AssignTaskRequest{
			Spec: spec, Seq: 5, Checkpoint: []float32{9, 8, 7, 6}, Version: 11,
		},
		"papaya/v1/server.AssignClientRequest": server.AssignClientRequest{
			ClientID: 77, Capabilities: []string{"lm", "gpu"},
		},
		"papaya/v1/server.AssignClientResponse": server.AssignClientResponse{
			Assigned: true, TaskID: "wt", Aggregator: "agg-0", Seq: 4,
		},
		"papaya/v1/server.MapResponse": server.MapResponse{
			Assignments: map[string]server.Assignment{
				"wt": {TaskID: "wt", Aggregator: "agg-0", Seq: 4},
			},
		},
		"papaya/v1/server.AgentListResponse": server.AgentListResponse{
			Agents: []string{"agg-0", "agg-1"},
		},
		"papaya/v1/server.ReconfigureRequest": server.ReconfigureRequest{
			TaskID: "wt", Mode: core.Sync, AggregationGoal: 3, MaxStaleness: 1,
		},
		"papaya/v1/server.CheckinRequest": server.CheckinRequest{ClientID: 5, Capabilities: []string{"lm"}},
		"papaya/v1/server.CheckinResponse": server.CheckinResponse{
			Accepted: true, TaskID: "wt", Aggregator: "agg-0", SessionID: 12, Version: 9,
			RetryAfterMs: 40,
		},
		"papaya/v1/server.JoinRequest": server.JoinRequest{TaskID: "wt", ClientID: 5},
		"papaya/v1/server.JoinResponse": server.JoinResponse{
			Accepted: true, SessionID: 12, Version: 9, RetryAfterMs: 40,
		},
		"papaya/v1/server.DownloadRequest": server.DownloadRequest{
			TaskID: "wt", SessionID: 12,
		},
		"papaya/v1/server.DownloadResponse": server.DownloadResponse{Params: []float32{1, 2, 3, 4}, Version: 9},
		"papaya/v1/server.ReportRequest":    server.ReportRequest{TaskID: "wt", SessionID: 12},
		"papaya/v1/server.ReportResponse": server.ReportResponse{
			OK: true, ChunkSize: 2, CurrentVersion: 9,
			DPClip: 1.5, DPLocalNoise: 0.75,
			SecAggEnabled: true, SecAggBundle: &w.bundle, SecAggTrust: w.trust,
		},
		// The masked-share payload: a SecAgg upload chunk carrying the
		// one-time-padded vector and the sealed-seed envelope.
		"papaya/v1/server.UploadChunk": server.UploadChunk{
			TaskID: "wt-sec", SessionID: 12, Offset: 0,
			Masked: w.upload.Masked, Done: true, NumExamples: 3,
			SecAggIndex:      w.upload.Index,
			SecAggCompleting: w.upload.Completing,
			SecAggEncSeed:    w.upload.EncSeed,
		},
		"papaya/v1/server.UploadResponse": server.UploadResponse{OK: false, Reason: "staleness exceeded"},
		"papaya/v1/server.FailRequest":    server.FailRequest{TaskID: "wt", SessionID: 12},
		"papaya/v1/server.RouteRequest": server.RouteRequest{
			TaskID: "wt", Method: "download",
			Payload: server.DownloadRequest{TaskID: "wt", SessionID: 12},
		},
		"papaya/v1/server.TaskInfo": server.TaskInfo{
			Version: 9, Updates: 31, Active: 2, Params: []float32{1, 2, 3, 4},
			DPEnabled: true, DPEpsilon: 3.25, DPDelta: 1e-6, DPReleases: 7,
			DPBudget: 8, DPExhausted: true,
		},
	}
}

// checkRoundTrip compares a decoded message with its original. Task specs
// carrying a SecAgg deployment are the one special case: the wire form is a
// recipe, so the reconstructed deployment is a fresh enclave with the same
// public parameters (see secagg's recipe comment), not a byte-equal copy.
func checkRoundTrip(t *testing.T, name string, in, out any) {
	t.Helper()
	if spec, ok := in.(server.TaskSpec); ok && spec.SecAgg != nil {
		got, ok := out.(server.TaskSpec)
		if !ok {
			t.Fatalf("%s: decoded type %T", name, out)
		}
		if got.SecAgg == nil {
			t.Fatalf("%s: SecAgg deployment lost in transit", name)
		}
		if got.SecAgg.Params != spec.SecAgg.Params {
			t.Fatalf("%s: SecAgg params %+v -> %+v", name, spec.SecAgg.Params, got.SecAgg.Params)
		}
		// Decoding must be inert (specs ride every heartbeat; decoding one
		// must not launch enclaves) ...
		if got.SecAgg.Enclave != nil {
			t.Fatalf("%s: decode launched an enclave; recipes must be inert", name)
		}
		// ... and Live must turn the recipe into a serving deployment.
		live, err := got.SecAgg.Live()
		if err != nil {
			t.Fatalf("%s: launching from recipe: %v", name, err)
		}
		if _, err := live.FetchInitialBundles(1); err != nil {
			t.Fatalf("%s: recipe-launched deployment is dead: %v", name, err)
		}
		spec.SecAgg, got.SecAgg = nil, nil
		if !reflect.DeepEqual(spec, got) {
			t.Fatalf("%s: non-SecAgg fields mangled:\n in: %+v\nout: %+v", name, spec, got)
		}
		return
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("%s round trip mangled:\n in: %#v\nout: %#v", name, in, out)
	}
}

func TestEveryRegisteredMessageRoundTrips(t *testing.T) {
	w := newSecaggWorld(t)
	sam := samples(t, w)

	// The sample set and the registry must cover each other exactly.
	names := wire.Names()
	for _, name := range names {
		if _, ok := sam[name]; !ok {
			t.Errorf("registered message %q has no round-trip sample", name)
		}
	}
	if len(sam) != len(names) {
		for name := range sam {
			if _, err := wire.NewValue(name); err != nil {
				t.Errorf("sample %q is not a registered message", name)
			}
		}
	}

	for _, codecName := range []string{"gob", "json", "bin"} {
		codec, err := wire.ByName(codecName)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(codecName, func(t *testing.T) {
			for name, in := range sam {
				// Round trip as a request payload.
				frame, err := codec.EncodeRequest(&wire.Request{From: "tester", Method: "m", Payload: in})
				if err != nil {
					t.Fatalf("%s: encode request: %v", name, err)
				}
				req, err := codec.DecodeRequest(frame)
				if err != nil {
					t.Fatalf("%s: decode request: %v", name, err)
				}
				if req.From != "tester" || req.Method != "m" {
					t.Fatalf("%s: envelope fields mangled: %+v", name, req)
				}
				checkRoundTrip(t, name, in, req.Payload)

				// And as a response payload.
				frame, err = codec.EncodeResponse(&wire.Response{Payload: in})
				if err != nil {
					t.Fatalf("%s: encode response: %v", name, err)
				}
				resp, err := codec.DecodeResponse(frame)
				if err != nil {
					t.Fatalf("%s: decode response: %v", name, err)
				}
				checkRoundTrip(t, name, in, resp.Payload)
			}
		})
	}
}

// TestChunkedUploadCrossesCodec chunks one model update the way the client
// runtime does (participation stage 4), pushes every chunk through the
// codec, and reassembles on the far side — the wire-level version of the
// server's chunk reassembly test.
func TestChunkedUploadCrossesCodec(t *testing.T) {
	const numParams, chunkSize = 23, 5
	delta := make([]float32, numParams)
	for i := range delta {
		delta[i] = float32(i) * 0.25
	}
	for _, codecName := range []string{"gob", "json", "bin"} {
		codec, _ := wire.ByName(codecName)
		t.Run(codecName, func(t *testing.T) {
			got := make([]float32, numParams)
			received, doneSeen := 0, false
			for off := 0; off < numParams; off += chunkSize {
				end := off + chunkSize
				if end > numParams {
					end = numParams
				}
				in := server.UploadChunk{
					TaskID: "t", SessionID: 1, Offset: off,
					Data: delta[off:end], Done: end == numParams, NumExamples: 4,
				}
				frame, err := codec.EncodeRequest(&wire.Request{From: "c", Method: "upload-chunk", Payload: in})
				if err != nil {
					t.Fatal(err)
				}
				req, err := codec.DecodeRequest(frame)
				if err != nil {
					t.Fatal(err)
				}
				c := req.Payload.(server.UploadChunk)
				copy(got[c.Offset:], c.Data)
				received += len(c.Data)
				doneSeen = doneSeen || c.Done
			}
			if received != numParams || !doneSeen {
				t.Fatalf("reassembly incomplete: %d/%d params, done=%v", received, numParams, doneSeen)
			}
			if !reflect.DeepEqual(got, delta) {
				t.Fatalf("reassembled delta differs:\n in: %v\nout: %v", delta, got)
			}
		})
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	gobCodec, _ := wire.ByName("gob")
	frame, err := gobCodec.EncodeRequest(&wire.Request{From: "a", Method: "m", Payload: "x"})
	if err != nil {
		t.Fatal(err)
	}
	frame[2] = 99 // corrupt the version byte
	if _, err := gobCodec.DecodeRequest(frame); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version gob frame accepted: %v", err)
	}

	jsonCodec, _ := wire.ByName("json")
	if _, err := jsonCodec.DecodeRequest([]byte(`{"v":99,"from":"a","method":"m"}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version json frame accepted: %v", err)
	}
	if _, err := jsonCodec.DecodeResponse([]byte(`{"v":99}`)); err == nil {
		t.Fatal("future-version json response accepted")
	}

	binCodec, _ := wire.ByName("bin")
	bframe, err := binCodec.EncodeRequest(&wire.Request{From: "a", Method: "m", Payload: "x"})
	if err != nil {
		t.Fatal(err)
	}
	bframe[2] = 99 // corrupt the version byte
	if _, err := binCodec.DecodeRequest(bframe); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version bin frame accepted: %v", err)
	}
}

func TestUnregisteredTypeRejected(t *testing.T) {
	type notRegistered struct{ X int }
	if _, err := wire.MarshalAny(notRegistered{X: 1}); err == nil {
		t.Fatal("unregistered type marshaled")
	}
	jsonCodec, _ := wire.ByName("json")
	if _, err := jsonCodec.EncodeRequest(&wire.Request{Payload: notRegistered{}}); err == nil {
		t.Fatal("unregistered payload encoded")
	}
	if _, err := jsonCodec.DecodeRequest([]byte(`{"v":1,"payload":{"type":"papaya/v9/ghost","body":{}}}`)); err == nil {
		t.Fatal("unknown type name decoded")
	}
}

func TestNilAnyRoundTrips(t *testing.T) {
	b, err := wire.MarshalAny(nil)
	if err != nil || string(b) != "null" {
		t.Fatalf("MarshalAny(nil) = %q, %v", b, err)
	}
	v, err := wire.UnmarshalAny(b)
	if err != nil || v != nil {
		t.Fatalf("UnmarshalAny(null) = %v, %v", v, err)
	}
}
