// Package vecf provides the small float32 vector/matrix kernel the model and
// aggregation code are built on. Model parameters, client updates, and
// aggregated buffers are all flat []float32 vectors; keeping the math here in
// one place lets the aggregator, optimizers, and networks share it.
package vecf

import "math"

// Zero sets every element of x to 0.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Clone returns a copy of x.
func Clone(x []float32) []float32 {
	out := make([]float32, len(x))
	copy(out, x)
	return out
}

// Fill sets every element of x to v.
func Fill(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// Add computes dst[i] += src[i]. It panics if lengths differ.
func Add(dst, src []float32) {
	checkLen(len(dst), len(src))
	for i, v := range src {
		dst[i] += v
	}
}

// Sub computes dst[i] -= src[i]. It panics if lengths differ.
func Sub(dst, src []float32) {
	checkLen(len(dst), len(src))
	for i, v := range src {
		dst[i] -= v
	}
}

// Scale computes x[i] *= a.
func Scale(x []float32, a float32) {
	for i := range x {
		x[i] *= a
	}
}

// AXPY computes dst[i] += a*src[i]. It panics if lengths differ.
func AXPY(dst []float32, a float32, src []float32) {
	checkLen(len(dst), len(src))
	for i, v := range src {
		dst[i] += a * v
	}
}

// Dot returns the inner product of a and b, accumulated in float64 for
// stability. It panics if lengths differ.
func Dot(a, b []float32) float64 {
	checkLen(len(a), len(b))
	var s float64
	for i, v := range a {
		s += float64(v) * float64(b[i])
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element of x (0 for empty input).
func MaxAbs(x []float32) float64 {
	var m float64
	for _, v := range x {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	return m
}

// ClipNorm rescales x in place so its Euclidean norm does not exceed c.
// It returns the norm before clipping.
func ClipNorm(x []float32, c float64) float64 {
	n := Norm2(x)
	if n > c && n > 0 {
		Scale(x, float32(c/n))
	}
	return n
}

// Diff computes dst[i] = a[i] - b[i]. It panics if lengths differ.
func Diff(dst, a, b []float32) {
	checkLen(len(dst), len(a))
	checkLen(len(a), len(b))
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// WeightedSumInto computes dst[i] += w*src[i] and returns w, as a convenience
// for weighted-aggregation call sites.
func WeightedSumInto(dst []float32, w float64, src []float32) float64 {
	AXPY(dst, float32(w), src)
	return w
}

// Softmax writes softmax(logits) into probs (which may alias logits) and
// returns the log of the partition function for use in cross-entropy:
// logZ = log(sum_i exp(logits_i)) computed stably.
func Softmax(probs, logits []float32) float64 {
	checkLen(len(probs), len(logits))
	maxv := float32(math.Inf(-1))
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - maxv))
		probs[i] = float32(e)
		sum += e
	}
	inv := float32(1.0 / sum)
	for i := range probs {
		probs[i] *= inv
	}
	return math.Log(sum) + float64(maxv)
}

// LogSumExp returns log(sum_i exp(x_i)) computed stably.
func LogSumExp(x []float32) float64 {
	maxv := float32(math.Inf(-1))
	for _, v := range x {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range x {
		sum += math.Exp(float64(v - maxv))
	}
	return math.Log(sum) + float64(maxv)
}

// ArgMax returns the index of the largest element (first on ties), or -1 for
// an empty slice.
func ArgMax(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// MatVec computes y = W x where W is an r-by-c row-major matrix. It panics
// if dimensions do not line up.
func MatVec(y []float32, w []float32, r, c int, x []float32) {
	if len(w) != r*c || len(x) != c || len(y) != r {
		panic("vecf: MatVec dimension mismatch")
	}
	for i := 0; i < r; i++ {
		row := w[i*c : (i+1)*c]
		var s float64
		for j, v := range row {
			s += float64(v) * float64(x[j])
		}
		y[i] = float32(s)
	}
}

// MatTVec computes y = W^T x where W is an r-by-c row-major matrix, i.e.
// y[j] = sum_i W[i][j]*x[i]. It panics if dimensions do not line up.
func MatTVec(y []float32, w []float32, r, c int, x []float32) {
	if len(w) != r*c || len(x) != r || len(y) != c {
		panic("vecf: MatTVec dimension mismatch")
	}
	Zero(y)
	for i := 0; i < r; i++ {
		row := w[i*c : (i+1)*c]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += xi * v
		}
	}
}

// OuterAccum computes W[i][j] += a * x[i]*y[j] for the r-by-c row-major W.
func OuterAccum(w []float32, r, c int, a float32, x, y []float32) {
	if len(w) != r*c || len(x) != r || len(y) != c {
		panic("vecf: OuterAccum dimension mismatch")
	}
	for i := 0; i < r; i++ {
		row := w[i*c : (i+1)*c]
		ax := a * x[i]
		if ax == 0 {
			continue
		}
		for j, v := range y {
			row[j] += ax * v
		}
	}
}

// Tanh applies tanh element-wise in place.
func Tanh(x []float32) {
	for i, v := range x {
		x[i] = float32(math.Tanh(float64(v)))
	}
}

// Sigmoid applies the logistic function element-wise in place.
func Sigmoid(x []float32) {
	for i, v := range x {
		x[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// AllFinite reports whether every element is a finite number.
func AllFinite(x []float32) bool {
	for _, v := range x {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

func checkLen(a, b int) {
	if a != b {
		panic("vecf: length mismatch")
	}
}
