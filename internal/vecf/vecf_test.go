package vecf

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestZeroAndFill(t *testing.T) {
	x := []float32{1, 2, 3}
	Zero(x)
	for _, v := range x {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
	Fill(x, 2.5)
	for _, v := range x {
		if v != 2.5 {
			t.Fatal("Fill failed")
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	x := []float32{1, 2}
	y := Clone(x)
	y[0] = 99
	if x[0] != 1 {
		t.Fatal("Clone aliases input")
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	x := []float32{1, 2, 3}
	Add(x, []float32{1, 1, 1})
	if x[0] != 2 || x[2] != 4 {
		t.Fatalf("Add: %v", x)
	}
	Sub(x, []float32{2, 2, 2})
	if x[0] != 0 || x[2] != 2 {
		t.Fatalf("Sub: %v", x)
	}
	Scale(x, 3)
	if x[1] != 3 {
		t.Fatalf("Scale: %v", x)
	}
	AXPY(x, 2, []float32{1, 1, 1})
	if x[0] != 2 || x[1] != 5 {
		t.Fatalf("AXPY: %v", x)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { Add([]float32{1}, []float32{1, 2}) },
		func() { Sub([]float32{1}, []float32{1, 2}) },
		func() { AXPY([]float32{1}, 1, []float32{1, 2}) },
		func() { Dot([]float32{1}, []float32{1, 2}) },
		func() { Diff([]float32{1}, []float32{1}, []float32{1, 2}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDotAndNorm(t *testing.T) {
	a := []float32{3, 4}
	if d := Dot(a, a); !almostEq(d, 25, 1e-9) {
		t.Fatalf("Dot = %v", d)
	}
	if n := Norm2(a); !almostEq(n, 5, 1e-9) {
		t.Fatalf("Norm2 = %v", n)
	}
}

func TestMaxAbs(t *testing.T) {
	if m := MaxAbs([]float32{-7, 3, 5}); m != 7 {
		t.Fatalf("MaxAbs = %v", m)
	}
	if m := MaxAbs(nil); m != 0 {
		t.Fatalf("MaxAbs(nil) = %v", m)
	}
}

func TestClipNorm(t *testing.T) {
	x := []float32{3, 4}
	before := ClipNorm(x, 1)
	if !almostEq(before, 5, 1e-9) {
		t.Fatalf("pre-norm = %v", before)
	}
	if n := Norm2(x); !almostEq(n, 1, 1e-6) {
		t.Fatalf("post-norm = %v", n)
	}
	// No clipping when already under the cap.
	y := []float32{0.1, 0}
	ClipNorm(y, 1)
	if y[0] != 0.1 {
		t.Fatal("ClipNorm modified a vector under the cap")
	}
}

func TestDiff(t *testing.T) {
	d := make([]float32, 2)
	Diff(d, []float32{5, 7}, []float32{2, 3})
	if d[0] != 3 || d[1] != 4 {
		t.Fatalf("Diff = %v", d)
	}
}

func TestSoftmax(t *testing.T) {
	logits := []float32{1, 2, 3}
	probs := make([]float32, 3)
	logZ := Softmax(probs, logits)
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("prob out of range: %v", p)
		}
		sum += float64(p)
	}
	if !almostEq(sum, 1, 1e-5) {
		t.Fatalf("softmax sum = %v", sum)
	}
	if probs[2] <= probs[1] || probs[1] <= probs[0] {
		t.Fatalf("softmax not monotone: %v", probs)
	}
	// logZ should equal LogSumExp of the logits.
	if !almostEq(logZ, LogSumExp(logits), 1e-9) {
		t.Fatalf("logZ = %v, LSE = %v", logZ, LogSumExp(logits))
	}
}

func TestSoftmaxStability(t *testing.T) {
	logits := []float32{1000, 1001, 1002}
	probs := make([]float32, 3)
	Softmax(probs, logits)
	if !AllFinite(probs) {
		t.Fatalf("softmax overflowed: %v", probs)
	}
}

func TestSoftmaxInPlace(t *testing.T) {
	x := []float32{0, 0, 0, 0}
	Softmax(x, x)
	for _, p := range x {
		if !almostEq(float64(p), 0.25, 1e-6) {
			t.Fatalf("uniform softmax = %v", x)
		}
	}
}

func TestArgMax(t *testing.T) {
	if i := ArgMax([]float32{1, 5, 3}); i != 1 {
		t.Fatalf("ArgMax = %d", i)
	}
	if i := ArgMax([]float32{2, 2}); i != 0 {
		t.Fatalf("ArgMax tie = %d", i)
	}
	if i := ArgMax(nil); i != -1 {
		t.Fatalf("ArgMax(nil) = %d", i)
	}
}

func TestMatVec(t *testing.T) {
	// W = [[1 2],[3 4],[5 6]] (3x2), x = [1, 10]
	w := []float32{1, 2, 3, 4, 5, 6}
	x := []float32{1, 10}
	y := make([]float32, 3)
	MatVec(y, w, 3, 2, x)
	want := []float32{21, 43, 65}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MatVec = %v, want %v", y, want)
		}
	}
}

func TestMatTVec(t *testing.T) {
	w := []float32{1, 2, 3, 4, 5, 6} // 3x2
	x := []float32{1, 1, 1}
	y := make([]float32, 2)
	MatTVec(y, w, 3, 2, x)
	if y[0] != 9 || y[1] != 12 {
		t.Fatalf("MatTVec = %v", y)
	}
}

func TestMatVecDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatVec with bad dims did not panic")
		}
	}()
	MatVec(make([]float32, 3), make([]float32, 5), 3, 2, make([]float32, 2))
}

func TestOuterAccum(t *testing.T) {
	w := make([]float32, 6) // 3x2
	OuterAccum(w, 3, 2, 2, []float32{1, 0, 2}, []float32{3, 4})
	want := []float32{6, 8, 0, 0, 12, 16}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("OuterAccum = %v, want %v", w, want)
		}
	}
}

func TestMatTVecConsistentWithMatVec(t *testing.T) {
	// <W x, y> must equal <x, W^T y>.
	w := []float32{1, -2, 0.5, 3, -1, 2, 4, 0, 1, 1, -3, 2} // 4x3
	x := []float32{0.3, -1, 2}
	y := []float32{1, 0.5, -2, 0.25}
	wx := make([]float32, 4)
	MatVec(wx, w, 4, 3, x)
	wty := make([]float32, 3)
	MatTVec(wty, w, 4, 3, y)
	if !almostEq(Dot(wx, y), Dot(x, wty), 1e-5) {
		t.Fatalf("adjoint identity violated: %v vs %v", Dot(wx, y), Dot(x, wty))
	}
}

func TestTanhSigmoid(t *testing.T) {
	x := []float32{0}
	Tanh(x)
	if x[0] != 0 {
		t.Fatalf("tanh(0) = %v", x[0])
	}
	y := []float32{0}
	Sigmoid(y)
	if !almostEq(float64(y[0]), 0.5, 1e-6) {
		t.Fatalf("sigmoid(0) = %v", y[0])
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float32{1, 2, 3}) {
		t.Fatal("finite vector flagged")
	}
	if AllFinite([]float32{1, float32(math.NaN())}) {
		t.Fatal("NaN not flagged")
	}
	if AllFinite([]float32{float32(math.Inf(1))}) {
		t.Fatal("Inf not flagged")
	}
}

// Property: Add then Sub with the same operand restores the input (within
// float32 rounding).
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for _, v := range append(Clone(a), b...) {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) ||
				math.Abs(float64(v)) > 1e6 {
				return true // skip pathological float inputs
			}
		}
		orig := Clone(a)
		Add(a, b)
		Sub(a, b)
		for i := range a {
			if math.Abs(float64(a[i]-orig[i])) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability vector for finite inputs.
func TestQuickSoftmaxSimplex(t *testing.T) {
	f := func(logits []float32) bool {
		if len(logits) == 0 {
			return true
		}
		for i, v := range logits {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				logits[i] = 0
			}
		}
		probs := make([]float32, len(logits))
		Softmax(probs, logits)
		var sum float64
		for _, p := range probs {
			if p < 0 {
				return false
			}
			sum += float64(p)
		}
		return almostEq(sum, 1, 1e-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAXPY(b *testing.B) {
	x := make([]float32, 4096)
	y := make([]float32, 4096)
	for i := range y {
		y[i] = float32(i)
	}
	b.SetBytes(4096 * 4)
	for i := 0; i < b.N; i++ {
		AXPY(x, 0.001, y)
	}
}

func BenchmarkMatVec(b *testing.B) {
	const r, c = 64, 64
	w := make([]float32, r*c)
	x := make([]float32, c)
	y := make([]float32, r)
	for i := range w {
		w[i] = float32(i%7) * 0.1
	}
	for i := range x {
		x[i] = 0.5
	}
	for i := 0; i < b.N; i++ {
		MatVec(y, w, r, c, x)
	}
}
