// Package vecpool provides size-classed sync.Pool-backed scratch vectors
// for the serving hot path. Every upload an aggregator accepts used to
// allocate fresh []float32/[]uint32 buffers (chunk decode scratch, the
// session's reassembly vector, the download response's model clone); at the
// loadtest's hundreds of sessions per second that is the dominant GC
// pressure on the control plane. The pools here let the wire codec, the
// compression decoder, and the aggregator lease vectors and return them
// once their contents have been copied into durable state (PAPAYA's
// buffered aggregation shards, Section 6.3), so steady-state serving
// allocates almost nothing per upload. (Byte-buffer scratch for wire
// frames lives in httptransport's frame pool, which grows by appending
// rather than by known size and so doesn't fit the size-class scheme.)
//
// Discipline: a leased vector is owned exclusively by the leaseholder until
// Put. Putting a slice that something else still references is a data
// corruption bug (the next Get hands the same backing array to an unrelated
// caller) — callers must copy out before releasing, exactly like the
// aggregator does when it folds a pending upload into its shards. Get
// returns zeroed slices so pooled memory can never leak one client's update
// into another's reassembly buffer.
//
// Pools are size-classed by power-of-two capacity. Put accepts only slices
// whose capacity is an exact class size (anything else — e.g. a slice that
// arrived from a gob decode — is silently discarded to the garbage
// collector), so Get can always re-slice a pooled buffer to the requested
// length.
package vecpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Outstanding-lease counters: Get of a pool-classed vector increments,
// Put of one decrements (non-classed slices touch neither). They exist
// for the leak and double-release assertions in the session-reaper and
// stream-soak tests — a session reaped with its reassembly vector leased
// shows up as a stuck positive delta, and a double release drives the
// count below its baseline. Two relaxed atomics per op; negligible next
// to the copy the vector exists for.
//
// Caveat: the counters track capacity class, not provenance. A foreign
// slice that happens to have an exact power-of-two capacity (e.g. a
// gob-decoded chunk of power-of-two length released via
// wire.BufferLease) is legitimately adopted by the pool on Put and
// decrements the count without a matching Get. Assertions that demand
// exact balance must therefore drive workloads whose foreign payload
// lengths avoid power-of-two sizes (the reaper and soak tests do), use
// the pooled bin decode path end to end, or enable the SetDebug
// provenance lease table, which tracks exactly which slices this package
// handed out and quarantines foreign Puts instead of adopting them.
var (
	outFloats atomic.Int64
	outUints  atomic.Int64
)

// Debug-mode provenance lease table (the VecPoolDebug switch). When
// enabled, every pooled Get records its slice's backing array and Put
// verifies the slice came from this package: a foreign power-of-two slice
// is counted in ForeignPuts and discarded to the GC — neither adopted nor
// allowed to skew the Outstanding counters. The table costs a mutexed map
// op per pooled Get/Put, so it is strictly for tests and diagnosis, never
// the serving path.
var (
	debugOn          atomic.Bool
	debugMu          sync.Mutex
	debugFloatLeases map[*float32]struct{}
	debugUintLeases  map[*uint32]struct{}
	debugForeignPuts atomic.Int64
)

// SetDebug toggles the provenance lease table. Enabling (or re-enabling)
// resets the table and the ForeignPuts counter; slices leased while debug
// was off are treated as foreign if Put while it is on.
func SetDebug(on bool) {
	debugMu.Lock()
	if on {
		debugFloatLeases = make(map[*float32]struct{})
		debugUintLeases = make(map[*uint32]struct{})
		debugForeignPuts.Store(0)
	}
	debugOn.Store(on)
	debugMu.Unlock()
}

// DebugEnabled reports whether the provenance lease table is active.
func DebugEnabled() bool { return debugOn.Load() }

// ForeignPuts reports Puts of pool-classed slices that were not
// outstanding leases of this package — foreign allocations and double
// releases both — observed since the last SetDebug(true). Each one would
// have silently skewed the Outstanding counters with debug off.
func ForeignPuts() int64 { return debugForeignPuts.Load() }

// debugLease records a pooled lease under the debug table. The map
// variable is dereferenced under debugMu so a concurrent SetDebug swap is
// safe.
func debugLease[T any](leases *map[*T]struct{}, s []T) {
	debugMu.Lock()
	(*leases)[&s[0]] = struct{}{}
	debugMu.Unlock()
}

// debugRelease validates a Put under the debug table and reports whether
// the slice is a genuine outstanding lease; foreign (or doubly released)
// slices are counted and rejected.
func debugRelease[T any](leases *map[*T]struct{}, s []T) bool {
	key := &s[:1][0]
	debugMu.Lock()
	_, ok := (*leases)[key]
	if ok {
		delete(*leases, key)
	}
	debugMu.Unlock()
	if !ok {
		debugForeignPuts.Add(1)
	}
	return ok
}

// OutstandingFloats reports currently leased pool-classed []float32
// vectors (gets minus puts since process start).
func OutstandingFloats() int64 { return outFloats.Load() }

// OutstandingUints reports currently leased pool-classed []uint32 vectors.
func OutstandingUints() int64 { return outUints.Load() }

// numClasses bounds the pooled size classes: class i holds slices of
// capacity 1<<i, up to 1<<27 elements (512 MiB of float32s, matching the
// compression frame bound). Larger requests fall through to plain make.
const numClasses = 28

// Pools store *wrap values, and the empty wrap headers are themselves
// recycled through a second pool, so a steady-state Get/Put cycle performs
// zero allocations (a naive Put(&s) would allocate a slice header per
// release — exactly the per-upload garbage this package exists to remove).
type floatWrap struct{ s []float32 }

type uintWrap struct{ s []uint32 }

var (
	floatPools [numClasses]sync.Pool
	uintPools  [numClasses]sync.Pool
	floatWraps sync.Pool
	uintWraps  sync.Pool
)

// classFor returns the pool class for a requested length: the smallest
// power-of-two capacity that holds n. n must be positive.
func classFor(n int) int {
	return bits.Len(uint(n - 1))
}

// GetFloats leases a zeroed []float32 of length n from the pool (capacity
// is the next power of two). n <= 0 returns nil. The caller owns the slice
// until PutFloats.
func GetFloats(n int) []float32 {
	if n <= 0 {
		return nil
	}
	class := classFor(n)
	if class >= numClasses {
		return make([]float32, n)
	}
	outFloats.Add(1)
	if w, _ := floatPools[class].Get().(*floatWrap); w != nil {
		s := w.s[:n]
		w.s = nil
		floatWraps.Put(w)
		clear(s)
		if debugOn.Load() {
			debugLease(&debugFloatLeases, s)
		}
		return s
	}
	s := make([]float32, n, 1<<class)
	if debugOn.Load() {
		debugLease(&debugFloatLeases, s)
	}
	return s
}

// PutFloats returns a leased slice to its pool. Slices whose capacity is
// not an exact class size (allocated elsewhere, e.g. by a gob decode) are
// discarded to the GC, which keeps Put safe to call on any slice the
// caller owns exclusively.
func PutFloats(s []float32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := classFor(c)
	if class >= numClasses {
		return
	}
	if debugOn.Load() && !debugRelease(&debugFloatLeases, s) {
		return // quarantined: neither adopted nor counted
	}
	outFloats.Add(-1)
	w, _ := floatWraps.Get().(*floatWrap)
	if w == nil {
		w = new(floatWrap)
	}
	w.s = s[:c]
	floatPools[class].Put(w)
}

// GetUints leases a zeroed []uint32 of length n; see GetFloats.
func GetUints(n int) []uint32 {
	if n <= 0 {
		return nil
	}
	class := classFor(n)
	if class >= numClasses {
		return make([]uint32, n)
	}
	outUints.Add(1)
	if w, _ := uintPools[class].Get().(*uintWrap); w != nil {
		s := w.s[:n]
		w.s = nil
		uintWraps.Put(w)
		clear(s)
		if debugOn.Load() {
			debugLease(&debugUintLeases, s)
		}
		return s
	}
	s := make([]uint32, n, 1<<class)
	if debugOn.Load() {
		debugLease(&debugUintLeases, s)
	}
	return s
}

// PutUints returns a leased slice to its pool; see PutFloats.
func PutUints(s []uint32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := classFor(c)
	if class >= numClasses {
		return
	}
	if debugOn.Load() && !debugRelease(&debugUintLeases, s) {
		return // quarantined: neither adopted nor counted
	}
	outUints.Add(-1)
	w, _ := uintWraps.Get().(*uintWrap)
	if w == nil {
		w = new(uintWrap)
	}
	w.s = s[:c]
	uintPools[class].Put(w)
}
