package vecpool_test

import (
	"sync"
	"testing"

	"repro/internal/vecpool"
)

func TestGetReturnsZeroedRequestedLength(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 100, 1024, 1025} {
		s := vecpool.GetFloats(n)
		if len(s) != n {
			t.Fatalf("GetFloats(%d) len = %d", n, len(s))
		}
		for i := range s {
			s[i] = 1
		}
		vecpool.PutFloats(s)
		s2 := vecpool.GetFloats(n)
		if len(s2) != n {
			t.Fatalf("second GetFloats(%d) len = %d", n, len(s2))
		}
		for i, v := range s2 {
			if v != 0 {
				t.Fatalf("pooled slice not zeroed at %d: %v (one client's data must never leak into another's buffer)", i, v)
			}
		}
	}
	if vecpool.GetFloats(0) != nil || vecpool.GetFloats(-1) != nil {
		t.Fatal("non-positive lengths must return nil")
	}
}

func TestPutRejectsForeignCapacities(t *testing.T) {
	// A gob-decoded slice can have any capacity; Put must silently discard
	// it rather than poison a size class.
	foreign := make([]float32, 5, 5)
	vecpool.PutFloats(foreign) // must not panic
	vecpool.PutUints(make([]uint32, 3, 3))
	vecpool.PutFloats(nil)
}

func TestUintVariant(t *testing.T) {
	u := vecpool.GetUints(33)
	if len(u) != 33 {
		t.Fatalf("GetUints len = %d", len(u))
	}
	u[0] = 42
	vecpool.PutUints(u)
	u2 := vecpool.GetUints(33)
	if u2[0] != 0 {
		t.Fatal("pooled uints not zeroed")
	}
}

// TestConcurrentLease exercises the pool discipline under the race
// detector: many goroutines leasing, writing a unique pattern, verifying
// it, and releasing. Any double-lease of a live buffer shows up as a
// pattern mismatch (and as a -race report).
func TestConcurrentLease(t *testing.T) {
	const goroutines = 16
	const rounds = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(tag float32) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := 64 + r%64
				s := vecpool.GetFloats(n)
				for i := range s {
					s[i] = tag
				}
				for i := range s {
					if s[i] != tag {
						t.Errorf("buffer shared between leaseholders: got %v want %v", s[i], tag)
						return
					}
				}
				vecpool.PutFloats(s)
			}
		}(float32(g + 1))
	}
	wg.Wait()
}

func BenchmarkGetPutFloats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := vecpool.GetFloats(1024)
		vecpool.PutFloats(s)
	}
}

// TestOutstandingCounters: pool-classed leases move the outstanding
// counters symmetrically; slices the pool discards (non-class capacity)
// touch neither side, so a Put of an alien slice cannot drive the count
// negative.
func TestOutstandingCounters(t *testing.T) {
	baseF, baseU := vecpool.OutstandingFloats(), vecpool.OutstandingUints()
	f := vecpool.GetFloats(100)
	u := vecpool.GetUints(33)
	if vecpool.OutstandingFloats() != baseF+1 || vecpool.OutstandingUints() != baseU+1 {
		t.Fatalf("after gets: floats %d->%d uints %d->%d",
			baseF, vecpool.OutstandingFloats(), baseU, vecpool.OutstandingUints())
	}
	// An alien slice with non-class capacity is discarded, uncounted.
	vecpool.PutFloats(make([]float32, 100))
	if vecpool.OutstandingFloats() != baseF+1 {
		t.Fatalf("alien put moved the counter to %d", vecpool.OutstandingFloats())
	}
	vecpool.PutFloats(f)
	vecpool.PutUints(u)
	if vecpool.OutstandingFloats() != baseF || vecpool.OutstandingUints() != baseU {
		t.Fatalf("after puts: floats %d (want %d) uints %d (want %d)",
			vecpool.OutstandingFloats(), baseF, vecpool.OutstandingUints(), baseU)
	}
}

// TestDebugLeaseTableCatchesForeignPut demonstrates the documented counter
// caveat and its debug-mode fix. With debug off, Putting a foreign slice of
// exact power-of-two capacity is adopted by the pool and decrements the
// Outstanding counter without a matching Get (the skew). With the
// provenance lease table on, the same Put is detected as foreign: counted
// in ForeignPuts, quarantined, and the counters stay balanced.
func TestDebugLeaseTableCatchesForeignPut(t *testing.T) {
	// Part 1: the skew the caveat documents, with debug off.
	baseF := vecpool.OutstandingFloats()
	vecpool.PutFloats(make([]float32, 64)) // foreign, power-of-two capacity: adopted
	if got := vecpool.OutstandingFloats(); got != baseF-1 {
		t.Fatalf("debug off: foreign Put should skew the counter: got %d, want %d", got, baseF-1)
	}
	// Rebalance by leasing the adopted slice back out.
	_ = vecpool.GetFloats(64)

	// Part 2: the same Put under the provenance lease table.
	vecpool.SetDebug(true)
	defer vecpool.SetDebug(false)
	if !vecpool.DebugEnabled() {
		t.Fatal("vecpool.SetDebug(true) did not enable debug")
	}

	baseF = vecpool.OutstandingFloats()
	s := vecpool.GetFloats(100) // class cap 128
	vecpool.PutFloats(s)
	if got := vecpool.OutstandingFloats(); got != baseF {
		t.Fatalf("own lease cycle unbalanced under debug: got %d, want %d", got, baseF)
	}
	if got := vecpool.ForeignPuts(); got != 0 {
		t.Fatalf("own lease cycle counted as foreign: %d", got)
	}

	vecpool.PutFloats(make([]float32, 64)) // deliberately foreign
	if got := vecpool.OutstandingFloats(); got != baseF {
		t.Fatalf("debug on: foreign Put skewed the counter: got %d, want %d", got, baseF)
	}
	if got := vecpool.ForeignPuts(); got != 1 {
		t.Fatalf("ForeignPuts = %d, want 1", got)
	}

	// A double release is caught the same way (the first Put retires the
	// lease, so the second has no matching provenance).
	s = vecpool.GetFloats(32)
	vecpool.PutFloats(s)
	vecpool.PutFloats(s)
	if got := vecpool.OutstandingFloats(); got != baseF {
		t.Fatalf("double Put skewed the counter under debug: got %d, want %d", got, baseF)
	}
	if got := vecpool.ForeignPuts(); got != 2 {
		t.Fatalf("ForeignPuts after double release = %d, want 2", got)
	}

	// The uint pool has the same protection.
	baseU := vecpool.OutstandingUints()
	u := vecpool.GetUints(100)
	vecpool.PutUints(u)
	vecpool.PutUints(make([]uint32, 128)) // foreign
	if got := vecpool.OutstandingUints(); got != baseU {
		t.Fatalf("debug on: foreign uint Put skewed the counter: got %d, want %d", got, baseU)
	}
	if got := vecpool.ForeignPuts(); got != 3 {
		t.Fatalf("ForeignPuts after uint foreign Put = %d, want 3", got)
	}
}
