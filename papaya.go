// Package papaya is a from-scratch Go reproduction of "PAPAYA: Practical,
// Private, and Scalable Federated Learning" (Huba et al., MLSys 2022):
// Meta's production federated-learning system supporting both synchronous
// and buffered-asynchronous (FedBuff) training with TEE-based asynchronous
// secure aggregation.
//
// This root package is the public facade. It re-exports the pieces a
// downstream user composes:
//
//   - Training runs: Config/Run execute AsyncFL (FedBuff) or SyncFL over a
//     discrete-event simulation of a heterogeneous device fleet, returning
//     the loss curves, communication counts, utilization traces, and
//     fairness samples the paper's evaluation reports. Client local SGD
//     executes on a parallel worker pool (Config.Workers, default
//     GOMAXPROCS) feeding sharded aggregation (Config.AggShards); results
//     are bit-for-bit identical for any worker count, so parallelism is
//     purely a wall-clock knob. `papaya bench` records the measured
//     speedup as JSON.
//   - Workload: NewPopulation models ~10^8 devices with correlated
//     speed/data-volume heterogeneity; NewCorpus generates the non-IID
//     federated language corpus; NewBilinearLM / NewLSTMLM are pure-Go
//     trainable language models.
//   - Secure aggregation: NewSecAggDeployment launches the Trusted Secure
//     Aggregator in a simulated SGX enclave with attestation and a
//     verifiable binary log; clients mask updates with one-time pads whose
//     16-byte seeds are the only per-client data crossing the enclave
//     boundary.
//   - Production control plane: NewCoordinator / NewAggregator /
//     NewSelector and the client Runtime run the paper's Section 4
//     architecture on real goroutines with heartbeats, failover, and
//     sequence-numbered assignment maps — over any Fabric: the in-memory
//     Network here, or real HTTP between OS processes via `papaya serve`,
//     `papaya agent`, and `papaya loadtest` (see docs/DEPLOYMENT.md).
//   - Experiments: Experiments() lists a regenerator for every table and
//     figure in Section 7.
//
// See examples/ for runnable entry points and DESIGN.md for the system
// inventory.
package papaya

import (
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/experiments"
	"repro/internal/fedopt"
	"repro/internal/lmdata"
	"repro/internal/nn"
	"repro/internal/population"
	"repro/internal/secagg"
	"repro/internal/server"
	"repro/internal/tee"
	"repro/internal/transport"
)

// Training orchestration (the paper's Section 3).
type (
	// Config parameterizes one federated training run.
	Config = core.Config
	// Result captures everything a run reports.
	Result = core.Result
	// Algorithm selects AsyncFL (FedBuff) or SyncFL.
	Algorithm = core.Algorithm
)

// Algorithms.
const (
	// Async is FedBuff: buffered asynchronous aggregation.
	Async = core.Async
	// Sync is round-based training with optional over-selection.
	Sync = core.Sync
)

// Run executes one federated training run over the event simulator.
func Run(model Model, corpus *Corpus, pop *Population, cfg Config) *Result {
	return core.Run(model, corpus, pop, cfg)
}

// Workload substrates.
type (
	// Population is the heterogeneous device fleet.
	Population = population.Population
	// PopulationConfig parameterizes the fleet.
	PopulationConfig = population.Config
	// Client is one device's derived attributes.
	Client = population.Client
	// Corpus is the synthetic non-IID federated language corpus.
	Corpus = lmdata.Corpus
	// CorpusConfig parameterizes the corpus.
	CorpusConfig = lmdata.Config
	// Model is a trainable next-token language model.
	Model = nn.Model
	// SGDConfig configures client-side local training.
	SGDConfig = nn.SGDConfig
)

// NewPopulation builds a device fleet; see DefaultPopulationConfig.
func NewPopulation(cfg PopulationConfig) *Population { return population.New(cfg) }

// DefaultPopulationConfig matches the paper's measured heterogeneity.
func DefaultPopulationConfig() PopulationConfig { return population.DefaultConfig() }

// NewCorpus builds the synthetic federated corpus.
func NewCorpus(cfg CorpusConfig) *Corpus { return lmdata.NewCorpus(cfg) }

// DefaultCorpusConfig sizes the corpus for fast sweeps.
func DefaultCorpusConfig() CorpusConfig { return lmdata.DefaultConfig() }

// NewBilinearLM returns the log-bilinear language model used in the large
// experiment sweeps.
func NewBilinearLM(vocab, dim int) Model { return nn.NewBilinear(vocab, dim) }

// NewLSTMLM returns the LSTM language model (the paper's architecture
// family).
func NewLSTMLM(vocab, embed, hidden int) Model { return nn.NewLSTM(vocab, embed, hidden) }

// DefaultSGDConfig is the paper's client setup: one epoch, batch size 32.
func DefaultSGDConfig() SGDConfig { return nn.DefaultSGDConfig() }

// Perplexity converts mean per-token NLL to perplexity.
func Perplexity(loss float64) float64 { return nn.Perplexity(loss) }

// Server optimizers (Reddi et al. 2020).
type (
	// Optimizer applies aggregated updates to the server model.
	Optimizer = fedopt.Optimizer
)

// NewFedAdam returns the paper's server optimizer with explicit
// hyperparameters.
func NewFedAdam(lr, beta1, beta2, eps float64) Optimizer {
	return fedopt.NewFedAdam(lr, beta1, beta2, eps)
}

// NewFedSGD returns plain server SGD (FedAvg when lr=1).
func NewFedSGD(lr float64) Optimizer { return fedopt.NewFedSGD(lr) }

// NewFedAvgM returns server-momentum SGD.
func NewFedAvgM(lr, beta float64) Optimizer { return fedopt.NewFedAvgM(lr, beta) }

// DPConfig enables the central differential-privacy extension (clipped
// client updates + Gaussian noise on every released aggregate, with zCDP
// accounting) via Config.DP. The paper's conclusion names this as the
// system's planned extension.
type DPConfig = dp.Config

// Secure aggregation (the paper's Section 5 and Appendices B-D).
type (
	// SecAggParams are the public protocol parameters.
	SecAggParams = secagg.Params
	// SecAggDeployment is a launched TSA-in-enclave installation.
	SecAggDeployment = secagg.Deployment
	// SecAggUpload is a client's masked contribution.
	SecAggUpload = secagg.Upload
	// TEECostModel calibrates enclave boundary-crossing costs.
	TEECostModel = tee.CostModel
)

// NewSecAggDeployment launches a Trusted Secure Aggregator built from the
// given trusted binary inside a metered enclave, publishing the binary to a
// fresh verifiable log.
func NewSecAggDeployment(params SecAggParams, binary []byte, cost TEECostModel, random RandomSource) (*SecAggDeployment, error) {
	return secagg.NewDeployment(params, binary, cost, random)
}

// SecAggClientTrust is a client's pinned trust material (collateral + log
// snapshot + parameters).
type SecAggClientTrust = secagg.ClientTrust

// SecAggClientSession is one client's validated protocol session.
type SecAggClientSession = secagg.ClientSession

// SecAggInitialBundle is the server-relayed check-in material (DH initial
// message, quote, log evidence).
type SecAggInitialBundle = secagg.InitialBundle

// NewSecAggClientSession validates an initial bundle end to end (log
// inclusion, attestation quote, parameter hash, DH signature) and completes
// the key exchange. Any failed check aborts.
func NewSecAggClientSession(trust SecAggClientTrust, bundle SecAggInitialBundle, random RandomSource) (*SecAggClientSession, error) {
	return secagg.NewClientSession(trust, bundle, random)
}

// DefaultTEECostModel reproduces the boundary throughput behind Figure 6.
func DefaultTEECostModel() TEECostModel { return tee.DefaultCostModel() }

// RandomSource is an entropy source (e.g. crypto/rand.Reader).
type RandomSource = interfaceReader

type interfaceReader interface {
	Read(p []byte) (n int, err error)
}

// Production control plane (the paper's Section 4).
type (
	// Fabric is the RPC surface the control plane runs over; the in-memory
	// Network and the HTTP backend (internal/transport/httptransport) both
	// implement it.
	Fabric = transport.Fabric
	// Network is the in-memory RPC fabric with fault injection.
	Network = transport.Network
	// Coordinator is the singleton control node.
	Coordinator = server.Coordinator
	// Aggregator is a persistent aggregation node.
	Aggregator = server.Aggregator
	// Selector fronts client traffic.
	Selector = server.Selector
	// TaskSpec describes one FL task.
	TaskSpec = server.TaskSpec
	// Timings groups control-plane intervals.
	Timings = server.Timings
	// DeviceRuntime is the edge client runtime.
	DeviceRuntime = client.Runtime
	// DeviceState is the eligibility condition set.
	DeviceState = client.DeviceState
	// ExampleStore is the on-device training-data store.
	ExampleStore = client.ExampleStore
)

// NewNetwork creates the in-memory fabric.
func NewNetwork(seed int64) *Network { return transport.NewNetwork(seed) }

// NewCoordinator starts the singleton coordinator on any Fabric.
func NewCoordinator(name string, net Fabric, timings Timings, seed int64, recovering bool) *Coordinator {
	return server.NewCoordinator(name, net, timings, seed, recovering)
}

// NewAggregator starts an aggregation node reporting to the coordinator.
func NewAggregator(name string, net Fabric, coordinator string, timings Timings) *Aggregator {
	return server.NewAggregator(name, net, coordinator, timings)
}

// NewSelector starts a selector node.
func NewSelector(name string, net Fabric, coordinator string, timings Timings) *Selector {
	return server.NewSelector(name, net, coordinator, timings)
}

// SelectorOptions configures optional selector behaviours — Routing turns
// a selector into the standalone routing tier (`papaya selector`).
type SelectorOptions = server.SelectorOptions

// NewSelectorWith starts a selector node with explicit options.
func NewSelectorWith(name string, net Fabric, coordinator string, timings Timings, opts SelectorOptions) *Selector {
	return server.NewSelectorWith(name, net, coordinator, timings, opts)
}

// DefaultTimings returns production-flavoured control-plane intervals.
func DefaultTimings() Timings { return server.DefaultTimings() }

// NewExampleStore creates an on-device store with the given retention
// policy.
func NewExampleStore(maxCount int, maxAge time.Duration) *ExampleStore {
	return client.NewExampleStore(maxCount, maxAge)
}

// Experiments (the paper's Section 7).
type (
	// Experiment regenerates one table or figure.
	Experiment = experiments.Experiment
	// ExperimentScale is a size preset.
	ExperimentScale = experiments.Scale
	// ExperimentTable is an experiment's output.
	ExperimentTable = experiments.Table
)

// Experiments lists a regenerator for every table and figure in the paper.
func Experiments() []Experiment { return experiments.Registry() }

// ScaleSmall runs every experiment in seconds (tests).
func ScaleSmall() ExperimentScale { return experiments.ScaleSmall() }

// ScalePaper uses the paper's concurrency range and goals.
func ScalePaper() ExperimentScale { return experiments.ScalePaper() }
