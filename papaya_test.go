package papaya_test

import (
	"crypto/rand"
	"fmt"
	"math"
	"testing"
	"time"

	papaya "repro"
)

// TestFacadeQuickstart exercises the whole public API surface the way a
// downstream user would: build a workload, train with both algorithms,
// compare the paper's headline quantities.
func TestFacadeQuickstart(t *testing.T) {
	model := papaya.NewBilinearLM(16, 4)
	corpusCfg := papaya.DefaultCorpusConfig()
	corpusCfg.VocabSize = 16
	corpusCfg.NumDialects = 4
	corpus := papaya.NewCorpus(corpusCfg)
	popCfg := papaya.DefaultPopulationConfig()
	popCfg.Size = 200_000
	popCfg.NumDialects = 4
	pop := papaya.NewPopulation(popCfg)

	var eval [][]int
	for d := 0; d < 4; d++ {
		eval = append(eval, corpus.EvalSet(d, 0.5, 20, fmt.Sprintf("facade-%d", d))...)
	}

	async := papaya.Config{
		Algorithm:        papaya.Async,
		Concurrency:      60,
		AggregationGoal:  10,
		Seed:             1,
		EvalSeqs:         eval,
		EvalEvery:        5,
		MaxServerUpdates: 60,
	}
	aRes := papaya.Run(model, corpus, pop, async)
	if aRes.FinalLoss >= aRes.LossCurve[0].V {
		t.Fatalf("facade async run did not learn: %v -> %v", aRes.LossCurve[0].V, aRes.FinalLoss)
	}

	sync := papaya.Config{
		Algorithm:        papaya.Sync,
		Concurrency:      60,
		OverSelection:    0.3,
		Seed:             1,
		EvalSeqs:         eval,
		EvalEvery:        2,
		MaxServerUpdates: 10,
	}
	sRes := papaya.Run(model, corpus, pop, sync)
	if aRes.UpdatesPerHour() <= sRes.UpdatesPerHour() {
		t.Fatalf("async %.1f upd/h not above sync %.1f", aRes.UpdatesPerHour(), sRes.UpdatesPerHour())
	}
}

// TestFacadeSecAgg runs the secure aggregation pipeline through the facade.
func TestFacadeSecAgg(t *testing.T) {
	params := papaya.SecAggParams{VecLen: 16, Threshold: 2, Scale: 1 << 16}
	dep, err := papaya.NewSecAggDeployment(params, []byte("facade-tsa"),
		papaya.DefaultTEECostModel(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bundles, err := dep.FetchInitialBundles(2)
	if err != nil {
		t.Fatal(err)
	}
	agg := dep.NewAggregator()
	for i := 0; i < 2; i++ {
		sess, err := papaya.NewSecAggClientSession(dep.ClientTrust(), bundles[i], rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		update := make([]float32, 16)
		update[0] = float32(i + 1)
		up, err := sess.MaskUpdate(update, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(up); err != nil {
			t.Fatal(err)
		}
	}
	sum, n, err := agg.Unmask()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || math.Abs(float64(sum[0])-3) > 1e-3 {
		t.Fatalf("aggregate = %v (n=%d)", sum[0], n)
	}
}

// TestFacadeProductionPlane spins the control plane up through the facade.
func TestFacadeProductionPlane(t *testing.T) {
	net := papaya.NewNetwork(1)
	timings := papaya.Timings{
		Heartbeat:        10 * time.Millisecond,
		FailureDeadline:  60 * time.Millisecond,
		MapRefresh:       15 * time.Millisecond,
		RecoveryPeriod:   50 * time.Millisecond,
		SelectorJoinWait: 5 * time.Millisecond,
	}
	coord := papaya.NewCoordinator("coordinator", net, timings, 1, false)
	defer coord.Stop()
	agg := papaya.NewAggregator("agg", net, "coordinator", timings)
	defer agg.Stop()
	sel := papaya.NewSelector("sel", net, "coordinator", timings)
	defer sel.Stop()

	if _, err := net.Call("test", "coordinator", "register-aggregator", "agg"); err != nil {
		t.Fatal(err)
	}
	model := papaya.NewBilinearLM(8, 3)
	spec := papaya.TaskSpec{
		ID:              "facade-task",
		Mode:            papaya.Async,
		NumParams:       model.NumParams(),
		Concurrency:     4,
		AggregationGoal: 2,
		Capability:      "lm",
		InitParams:      make([]float32, model.NumParams()),
	}
	if _, err := net.Call("test", "coordinator", "create-task", spec); err != nil {
		t.Fatal(err)
	}

	store := papaya.NewExampleStore(10, time.Hour)
	store.Add([]int{1, 2, 3}, time.Now())
	if store.Len() != 1 {
		t.Fatal("example store broken")
	}
	if (papaya.DeviceState{Idle: true, Charging: true, Unmetered: true}).Eligible() != true {
		t.Fatal("eligibility broken")
	}
}

// TestFacadeExperiments checks the registry is reachable via the facade.
func TestFacadeExperiments(t *testing.T) {
	if len(papaya.Experiments()) != 12 {
		t.Fatalf("experiments = %d, want 12", len(papaya.Experiments()))
	}
	if papaya.ScaleSmall().Name != "small" || papaya.ScalePaper().Name != "paper" {
		t.Fatal("scale presets broken")
	}
	if p := papaya.Perplexity(0); p != 1 {
		t.Fatalf("Perplexity(0) = %v", p)
	}
}

// TestFacadeOptimizers smoke-tests the optimizer constructors.
func TestFacadeOptimizers(t *testing.T) {
	for _, opt := range []papaya.Optimizer{
		papaya.NewFedAdam(0.01, 0.9, 0.99, 1e-3),
		papaya.NewFedSGD(1.0),
		papaya.NewFedAvgM(0.5, 0.9),
	} {
		p := []float32{0, 0}
		opt.Step(p, []float32{1, -1})
		if p[0] <= 0 || p[1] >= 0 {
			t.Fatalf("%s moved against the update", opt.Name())
		}
	}
}
